"""Randomized property tests: RunList vs a naive per-page dict model.

Same differential pattern as ``test_vmm_differential.py`` (the
``mem/reference.py`` oracle), one layer down: drive :class:`RunList`
through random splice/clear sequences and mirror every operation in a
plain ``{position: value}`` dict.  After every step the run list must
agree with the dict on every query *and* satisfy the structural
invariants (sorted, disjoint, coalesced) via
:func:`repro.check.check_runlist`.
"""

from __future__ import annotations

import random

import pytest

from repro.check import check_runlist
from repro.mem.runlist import RunList

AXIS = 64  # positions [0, AXIS)
VALUES = ("a", "b", "c")


def random_pieces(rng: random.Random, lo: int, hi: int):
    """Sorted, disjoint (start, end, value) runs inside [lo, hi)."""
    pieces = []
    pos = lo
    while pos < hi and len(pieces) < 3 and rng.random() < 0.8:
        start = rng.randint(pos, hi - 1)
        end = rng.randint(start + 1, hi)
        pieces.append((start, end, rng.choice(VALUES)))
        pos = end
    return pieces


def apply_model(model: dict, lo: int, hi: int, pieces) -> None:
    for position in range(lo, hi):
        model.pop(position, None)
    for start, end, value in pieces:
        for position in range(start, end):
            model[position] = value


def assert_equivalent(runs: RunList, model: dict, subject: str) -> None:
    check_runlist(runs, subject, 0, AXIS)
    # Point queries agree everywhere, including gaps.
    for position in range(AXIS):
        assert runs.value_at(position, default=None) == model.get(position), (
            f"{subject}: value_at({position})"
        )
    # Coverage counts agree on the full axis.
    assert runs.covered(0, AXIS) == len(model), f"{subject}: covered"
    # iter_runs reconstructs the model exactly.
    rebuilt = {}
    for start, end, value in runs.iter_runs(0, AXIS):
        for position in range(start, end):
            rebuilt[position] = value
    assert rebuilt == model, f"{subject}: iter_runs"


@pytest.mark.parametrize("seed", range(12))
def test_random_splices_match_per_page_model(seed):
    rng = random.Random(seed)
    runs = RunList()
    model: dict = {}
    for step in range(150):
        lo = rng.randrange(AXIS)
        hi = rng.randint(lo + 1, AXIS)
        if rng.random() < 0.25:
            runs.clear(lo, hi)
            apply_model(model, lo, hi, ())
        else:
            pieces = random_pieces(rng, lo, hi)
            runs.splice(lo, hi, pieces)
            apply_model(model, lo, hi, pieces)
        assert_equivalent(runs, model, f"seed{seed} step{step}")


@pytest.mark.parametrize("seed", range(12, 18))
def test_random_window_queries_match(seed):
    rng = random.Random(seed)
    runs = RunList()
    model: dict = {}
    for _ in range(60):
        lo = rng.randrange(AXIS)
        hi = rng.randint(lo + 1, AXIS)
        pieces = random_pieces(rng, lo, hi)
        runs.splice(lo, hi, pieces)
        apply_model(model, lo, hi, pieces)
        for _ in range(8):
            qlo = rng.randrange(AXIS)
            qhi = rng.randint(qlo + 1, AXIS)
            expected = sum(1 for p in range(qlo, qhi) if p in model)
            assert runs.covered(qlo, qhi) == expected
            # iter_segments tiles [qlo, qhi) exactly: gaps + runs, in order.
            position = qlo
            for s, e, value in runs.iter_segments(qlo, qhi, absent=None):
                assert s == position
                assert e > s
                for p in range(s, e):
                    assert model.get(p) == value
                position = e
            assert position == qhi


def test_coalescing_across_splice_boundaries():
    runs = RunList()
    runs.splice(0, 4, [(0, 4, "a")])
    runs.splice(4, 8, [(4, 8, "a")])
    assert len(runs) == 1  # merged into one run
    runs.splice(2, 6, [(2, 6, "b")])
    assert list(runs.iter_runs()) == [(0, 2, "a"), (2, 6, "b"), (6, 8, "a")]
    runs.splice(2, 6, [(2, 6, "a")])
    assert len(runs) == 1
    check_runlist(runs, "coalesce", 0, 8)
