"""Unit tests for the run-length interval primitive and bulk file-cache ops."""

from __future__ import annotations

import random

import pytest

from repro.mem.layout import PAGE_SIZE
from repro.mem.physical import MappedFile
from repro.mem.runlist import RunList


def runs_of(rl: RunList):
    return list(zip(rl.starts, rl.ends, rl.values))


class TestSplice:
    def test_insert_into_empty(self):
        rl = RunList()
        rl.splice(4, 10, [(4, 10, "a")])
        assert runs_of(rl) == [(4, 10, "a")]

    def test_disjoint_inserts_stay_sorted(self):
        rl = RunList()
        rl.splice(20, 30, [(20, 30, "b")])
        rl.splice(0, 5, [(0, 5, "a")])
        rl.splice(10, 12, [(10, 12, "c")])
        assert runs_of(rl) == [(0, 5, "a"), (10, 12, "c"), (20, 30, "b")]

    def test_overwrite_middle_preserves_edges(self):
        rl = RunList()
        rl.splice(0, 10, [(0, 10, "a")])
        rl.splice(3, 7, [(3, 7, "b")])
        assert runs_of(rl) == [(0, 3, "a"), (3, 7, "b"), (7, 10, "a")]

    def test_overwrite_with_same_value_recoalesces(self):
        rl = RunList()
        rl.splice(0, 10, [(0, 10, "a")])
        rl.splice(3, 7, [(3, 7, "a")])
        assert runs_of(rl) == [(0, 10, "a")]

    def test_clear_punches_hole(self):
        rl = RunList()
        rl.splice(0, 10, [(0, 10, "a")])
        rl.clear(2, 5)
        assert runs_of(rl) == [(0, 2, "a"), (5, 10, "a")]

    def test_neighbour_coalescing_across_window(self):
        rl = RunList()
        rl.splice(0, 3, [(0, 3, "a")])
        rl.splice(6, 9, [(6, 9, "a")])
        rl.splice(3, 6, [(3, 6, "a")])
        assert runs_of(rl) == [(0, 9, "a")]

    def test_pieces_coalesce_internally(self):
        rl = RunList()
        rl.splice(0, 10, [(0, 4, "a"), (4, 8, "a"), (8, 10, "b")])
        assert runs_of(rl) == [(0, 8, "a"), (8, 10, "b")]

    def test_empty_pieces_are_skipped(self):
        rl = RunList()
        rl.splice(0, 10, [(0, 0, "a"), (2, 5, "b"), (7, 7, "c")])
        assert runs_of(rl) == [(2, 5, "b")]

    def test_splice_replacing_many_runs(self):
        rl = RunList()
        for i in range(5):
            rl.splice(i * 4, i * 4 + 2, [(i * 4, i * 4 + 2, i)])
        rl.splice(1, 17, [(1, 17, "x")])
        assert runs_of(rl) == [(0, 1, 0), (1, 17, "x"), (17, 18, 4)]


class TestQueries:
    def test_value_at_and_gaps(self):
        rl = RunList()
        rl.splice(2, 6, [(2, 6, "a")])
        assert rl.value_at(1, "gap") == "gap"
        assert rl.value_at(2) == "a"
        assert rl.value_at(5) == "a"
        assert rl.value_at(6, "gap") == "gap"

    def test_iter_runs_clips(self):
        rl = RunList()
        rl.splice(0, 10, [(0, 10, "a")])
        assert list(rl.iter_runs(3, 7)) == [(3, 7, "a")]

    def test_iter_segments_includes_gaps(self):
        rl = RunList()
        rl.splice(2, 4, [(2, 4, "a")])
        rl.splice(6, 8, [(6, 8, "b")])
        assert list(rl.iter_segments(0, 10, "-")) == [
            (0, 2, "-"),
            (2, 4, "a"),
            (4, 6, "-"),
            (6, 8, "b"),
            (8, 10, "-"),
        ]

    def test_covered(self):
        rl = RunList()
        rl.splice(0, 4, [(0, 4, "a")])
        rl.splice(8, 10, [(8, 10, "b")])
        assert rl.covered() == 6
        assert rl.covered(2, 9) == 3


class TestRandomizedAgainstDict:
    """The RunList must agree with a plain per-unit dict model."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_splices(self, seed):
        rng = random.Random(seed)
        rl = RunList()
        model = {}
        universe = 64
        for _ in range(300):
            lo = rng.randint(0, universe - 1)
            hi = rng.randint(lo + 1, universe)
            if rng.random() < 0.3:
                rl.clear(lo, hi)
                for k in range(lo, hi):
                    model.pop(k, None)
            else:
                value = rng.choice("abc")
                # One uniform piece covering a sub-window of [lo, hi).
                s = rng.randint(lo, hi - 1)
                e = rng.randint(s + 1, hi)
                rl.splice(lo, hi, [(s, e, value)])
                for k in range(lo, hi):
                    model.pop(k, None)
                for k in range(s, e):
                    model[k] = value
            for k in range(universe):
                assert rl.value_at(k) == model.get(k), (seed, k)
            # Invariant: sorted, disjoint, coalesced.
            for i in range(len(rl)):
                assert rl.starts[i] < rl.ends[i]
                if i:
                    assert rl.starts[i] >= rl.ends[i - 1]
                    if rl.starts[i] == rl.ends[i - 1]:
                        assert rl.values[i] != rl.values[i - 1]


class TestMappedFileRangeOps:
    """Bulk touch_range/untouch_range vs per-page touch/untouch."""

    @pytest.mark.parametrize("seed", range(4))
    def test_range_matches_per_page(self, seed):
        rng = random.Random(seed)
        pages = 40
        bulk = MappedFile("/lib/bulk.so", pages * PAGE_SIZE)
        ref = MappedFile("/lib/ref.so", pages * PAGE_SIZE)
        ids = [101, 202, 303]
        for _ in range(200):
            mid = rng.choice(ids)
            lo = rng.randint(0, pages - 1)
            hi = rng.randint(lo + 1, pages)
            if rng.random() < 0.5:
                fresh = bulk.touch_range(lo, hi, mid)
                fresh_ref = sum(ref.touch(p, mid) for p in range(lo, hi))
            else:
                fresh = bulk.untouch_range(lo, hi, mid)
                fresh_ref = sum(ref.untouch(p, mid) for p in range(lo, hi))
            assert fresh == fresh_ref
            assert bulk.resident_pages() == ref.resident_pages()
            for mid2 in ids:
                assert bulk.solo_pages(mid2) == ref.solo_pages(mid2)
                # Fraction-exact shares: equality, not approx.
                assert bulk.pss_pages(mid2) == ref.pss_pages(mid2)
            for p in range(pages):
                assert bulk.sharers(p) == ref.sharers(p)

    def test_out_of_range_touch_raises(self):
        f = MappedFile("/lib/x.so", 2 * PAGE_SIZE)
        with pytest.raises(ValueError, match="out of range"):
            f.touch(2, 1)
        with pytest.raises(ValueError, match="out of range"):
            f.touch_range(0, 3, 1)

    def test_empty_range_is_noop(self):
        f = MappedFile("/lib/x.so", 2 * PAGE_SIZE)
        assert f.touch_range(1, 1, 7) == 0
        assert f.untouch_range(0, 0, 7) == 0
        assert f.resident_pages() == 0
