"""Differential test: run-length VMM vs the per-page reference oracle.

Drives a :class:`repro.mem.vmm.VirtualAddressSpace` and a
:class:`repro.mem.reference.ReferenceAddressSpace` through identical
randomized mmap/touch/discard/swap/mprotect/munmap sequences -- two
parallel universes with their own physical memory and mapped files -- and
asserts identical observable state after every single step: return values,
``MemoryReport``s, per-page states, fault counters, version/release_epoch
cadence, physical/swap counters, and smaps output.
"""

from __future__ import annotations

import random

import pytest

from repro.mem.accounting import measure, measure_mapping
from repro.mem.layout import PAGE_SIZE, PROT_RW, Protection
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.reference import ReferenceAddressSpace
from repro.mem.smaps import smaps_report
from repro.mem.vmm import (
    MemoryError_,
    PageState,
    VirtualAddressSpace,
)

BASE = 0x7F00_0000_0000
MAX_MAP_PAGES = 48


def _report_tuple(r):
    return (
        r.private_dirty,
        r.private_clean,
        r.shared_clean,
        r.shared_dirty,
        pytest.approx(r.pss),
        r.swap,
    )


class DualSpace:
    """The two universes plus the comparison machinery."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.phys_new = PhysicalMemory()
        self.phys_ref = PhysicalMemory()
        self.new = VirtualAddressSpace("new", self.phys_new, mmap_base=BASE)
        self.ref = ReferenceAddressSpace("ref", self.phys_ref, mmap_base=BASE)
        # Mirrored file pairs, created lazily per library "path".
        self.files: dict = {}
        self.n_files = 0

    # ----------------------------------------------------------- operations

    def both(self, op, *args):
        """Apply one operation to both spaces; results/errors must agree."""
        results = []
        for space in (self.new, self.ref):
            try:
                results.append(("ok", op(space, *args)))
            except MemoryError_ as exc:
                results.append(("err", type(exc).__name__))
        kind_new, out_new = results[0]
        kind_ref, out_ref = results[1]
        assert kind_new == kind_ref, f"{op}: {results}"
        if kind_new == "err":
            assert out_new == out_ref
            return None
        return out_new, out_ref

    def file_pair(self, key: int, pages: int):
        if key not in self.files:
            self.files[key] = (
                MappedFile(f"/lib/{key}.so#new", pages * PAGE_SIZE),
                MappedFile(f"/lib/{key}.so#ref", pages * PAGE_SIZE),
            )
        return self.files[key]

    def random_op(self) -> None:
        rng = self.rng
        mappings = self.new.mappings()
        choice = rng.random()
        if not mappings or choice < 0.18:
            self.op_mmap()
        elif choice < 0.55:
            self.op_touch()
        elif choice < 0.70:
            self.op_discard()
        elif choice < 0.82:
            self.op_swap_out()
        elif choice < 0.90:
            self.op_protect()
        else:
            self.op_munmap()
        self.check()

    def op_mmap(self) -> None:
        rng = self.rng
        pages = rng.randint(1, MAX_MAP_PAGES)
        if rng.random() < 0.4:
            key = rng.randint(0, 3)
            f_new, f_ref = self.file_pair(key, max(pages, rng.randint(1, MAX_MAP_PAGES)))
            # The pair may predate this call with a smaller file; mappings
            # must never extend past the file end (as in the real runtimes).
            file_pages = f_new.num_pages
            pages = min(pages, file_pages)
            shared = rng.random() < 0.3
            offset = rng.randint(0, file_pages - pages) * PAGE_SIZE
            prot = PROT_RW if shared or rng.random() < 0.5 else Protection.READ
            self.both(
                lambda s, fn=f_new, fr=f_ref: s.mmap(
                    pages * PAGE_SIZE,
                    prot=prot,
                    file=fn if s is self.new else fr,
                    file_offset=offset,
                    shared=shared,
                    name=f"/lib/{key}.so",
                )
            )
        else:
            self.both(lambda s: s.mmap(pages * PAGE_SIZE))

    def _random_window(self):
        """A byte range overlapping a random live mapping (possibly past it)."""
        rng = self.rng
        m = rng.choice(self.new.mappings())
        first = rng.randint(0, m.num_pages - 1)
        span = rng.randint(1, m.num_pages - first)
        addr = m.start + first * PAGE_SIZE + rng.randint(0, PAGE_SIZE - 1)
        length = span * PAGE_SIZE - rng.randint(0, PAGE_SIZE - 1)
        return addr, max(0, length)

    def op_touch(self) -> None:
        addr, length = self._random_window()
        write = self.rng.random() < 0.6
        out = self.both(lambda s: s.touch(addr, length, write=write))
        if out is not None:
            a, b = out
            assert (a.minor, a.major) == (b.minor, b.major)

    def op_discard(self) -> None:
        addr, length = self._random_window()
        out = self.both(lambda s: s.discard(addr, length))
        if out is not None:
            assert out[0] == out[1]

    def op_swap_out(self) -> None:
        addr, length = self._random_window()
        out = self.both(lambda s: s.swap_out_range(addr, length))
        if out is not None:
            a, b = out
            assert (a.swapped, a.dropped) == (b.swapped, b.dropped)

    def op_protect(self) -> None:
        rng = self.rng
        m = rng.choice(self.new.mappings())
        first = rng.randint(0, m.num_pages - 1)
        span = rng.randint(1, m.num_pages - first)
        addr = m.start + first * PAGE_SIZE
        length = span * PAGE_SIZE
        if rng.random() < 0.5:
            self.both(lambda s: s.uncommit(addr, length))
        else:
            self.both(lambda s: s.commit(addr, length))

    def op_munmap(self) -> None:
        rng = self.rng
        m = rng.choice(self.new.mappings())
        first = rng.randint(0, m.num_pages - 1)
        span = rng.randint(1, m.num_pages - first)
        self.both(
            lambda s: s.munmap(m.start + first * PAGE_SIZE, span * PAGE_SIZE)
        )

    # ----------------------------------------------------------- invariants

    def check(self) -> None:
        new, ref = self.new, self.ref
        assert new.version == ref.version
        assert new.release_epoch == ref.release_epoch
        assert (new.faults.minor, new.faults.major) == (
            ref.faults.minor,
            ref.faults.major,
        )
        assert self.phys_new.anon_bytes == self.phys_ref.anon_bytes
        assert self.phys_new.file_cache_bytes == self.phys_ref.file_cache_bytes
        assert self.phys_new.swap.pages == self.phys_ref.swap.pages
        assert self.phys_new.total_frame_allocs == self.phys_ref.total_frame_allocs

        maps_new, maps_ref = new.mappings(), ref.mappings()
        assert [(m.start, m.length) for m in maps_new] == [
            (m.start, m.length) for m in maps_ref
        ]
        for mn, mr in zip(maps_new, maps_ref):
            assert mn.prot == mr.prot and mn.shared == mr.shared
            assert (mn.n_anon, mn.n_file, mn.n_swapped) == (
                mr.n_anon,
                mr.n_file,
                mr.n_swapped,
            )
            # Exact per-page states, via both the run and dict interfaces.
            assert dict(mn.page_states()) == dict(mr.page_states())
            for rel in range(mn.num_pages):
                assert mn.state_of(rel) is mr.state_of(rel)
                assert (rel in mn.pages) == (rel in mr.pages)
            assert _report_tuple(measure_mapping(mn)) == _report_tuple(
                measure_mapping(mr)
            )
        assert _report_tuple(measure(new)) == _report_tuple(measure(ref))
        smaps_new, smaps_ref = smaps_report(new), smaps_report(ref)
        assert len(smaps_new) == len(smaps_ref)
        for en, er in zip(smaps_new, smaps_ref):
            assert (en.start, en.end, en.name, en.shared) == (
                er.start,
                er.end,
                er.name,
                er.shared,
            )
            assert _report_tuple(en.report) == _report_tuple(er.report)
            assert en.is_private_unmodified_file() == er.is_private_unmodified_file()


@pytest.mark.parametrize("seed", range(8))
def test_differential_random_sequences(seed):
    dual = DualSpace(seed)
    for _ in range(120):
        dual.random_op()
    dual.both(lambda s: s.close())
    assert dual.phys_new.anon_bytes == 0 == dual.phys_ref.anon_bytes
    assert dual.phys_new.file_cache_bytes == 0 == dual.phys_ref.file_cache_bytes
    assert dual.phys_new.swap.pages == 0 == dual.phys_ref.swap.pages


def test_differential_split_heavy():
    """Bias toward splits: mprotect/munmap mid-mapping with file pages."""
    dual = DualSpace(1234)
    f_new, f_ref = dual.file_pair(9, 32)
    out = dual.both(
        lambda s: s.mmap(
            32 * PAGE_SIZE,
            prot=PROT_RW,
            file=f_new if s is dual.new else f_ref,
            name="/lib/9.so",
        )
    )
    m_new, _ = out
    start = m_new.start
    dual.both(lambda s: s.touch(start, 32 * PAGE_SIZE, write=False))
    dual.check()
    dual.both(lambda s: s.touch(start + 4 * PAGE_SIZE, 3 * PAGE_SIZE, write=True))
    dual.check()
    dual.both(lambda s: s.mprotect(start + 8 * PAGE_SIZE, 8 * PAGE_SIZE, Protection.READ))
    dual.check()
    dual.both(lambda s: s.munmap(start + 20 * PAGE_SIZE, 4 * PAGE_SIZE))
    dual.check()
    dual.both(lambda s: s.swap_out_range(start, 16 * PAGE_SIZE))
    dual.check()
    dual.both(lambda s: s.touch(start, 8 * PAGE_SIZE, write=True))
    dual.check()


def test_page_state_view_matches_dict_protocol():
    space = VirtualAddressSpace("view", PhysicalMemory())
    m = space.mmap(PAGE_SIZE * 4)
    space.touch(m.start, PAGE_SIZE * 2)
    view = m.pages
    assert 0 in view and 1 in view and 2 not in view
    assert view[0] is PageState.ANON_DIRTY
    assert view.get(3) is None
    assert len(view) == 2
    assert sorted(view) == [0, 1]
    assert dict(view.items()) == {
        0: PageState.ANON_DIRTY,
        1: PageState.ANON_DIRTY,
    }
    with pytest.raises(KeyError):
        view[2]
