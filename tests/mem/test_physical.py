"""Unit tests for frame accounting, the file page cache, and swap."""

import pytest

from repro.mem.layout import PAGE_SIZE
from repro.mem.physical import (
    MappedFile,
    OutOfPhysicalMemory,
    PhysicalMemory,
    SwapDevice,
)


class TestSwapDevice:
    def test_swap_out_and_in_round_trip(self):
        swap = SwapDevice()
        swap.swap_out(3)
        assert swap.pages == 3
        assert swap.bytes == 3 * PAGE_SIZE
        swap.swap_in(2)
        assert swap.pages == 1
        assert swap.total_swap_outs == 3
        assert swap.total_swap_ins == 2

    def test_swap_in_more_than_swapped_raises(self):
        swap = SwapDevice()
        swap.swap_out(1)
        with pytest.raises(ValueError):
            swap.swap_in(2)


class TestMappedFile:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            MappedFile("/lib/x.so", 0)

    def test_first_touch_allocates_cache_page(self):
        f = MappedFile("/lib/x.so", PAGE_SIZE * 4)
        assert f.touch(0, mapping_id=1) is True
        assert f.touch(0, mapping_id=2) is False
        assert f.sharers(0) == 2
        assert f.resident_pages() == 1

    def test_untouch_frees_only_when_last(self):
        f = MappedFile("/lib/x.so", PAGE_SIZE * 4)
        f.touch(1, 10)
        f.touch(1, 11)
        assert f.untouch(1, 10) is False
        assert f.untouch(1, 11) is True
        assert f.sharers(1) == 0
        assert f.resident_pages() == 0

    def test_untouch_of_unknown_toucher_is_noop(self):
        f = MappedFile("/lib/x.so", PAGE_SIZE)
        assert f.untouch(0, 99) is False

    def test_touch_out_of_range_raises(self):
        f = MappedFile("/lib/x.so", PAGE_SIZE)
        with pytest.raises(ValueError):
            f.touch(5, 1)

    def test_num_pages_rounds_up(self):
        assert MappedFile("/f", PAGE_SIZE + 1).num_pages == 2


class TestPhysicalMemory:
    def test_anon_alloc_free_balance(self):
        phys = PhysicalMemory()
        phys.alloc_anon(5)
        assert phys.anon_bytes == 5 * PAGE_SIZE
        phys.free_anon(5)
        assert phys.anon_bytes == 0
        assert phys.total_frame_allocs == 5

    def test_file_alloc_free_balance(self):
        phys = PhysicalMemory()
        phys.alloc_file(2)
        assert phys.file_cache_bytes == 2 * PAGE_SIZE
        phys.free_file()
        assert phys.file_cache_bytes == PAGE_SIZE

    def test_over_free_raises(self):
        phys = PhysicalMemory()
        with pytest.raises(ValueError):
            phys.free_anon()
        with pytest.raises(ValueError):
            phys.free_file()

    def test_capacity_enforced(self):
        phys = PhysicalMemory(capacity_bytes=2 * PAGE_SIZE)
        phys.alloc_anon(2)
        with pytest.raises(OutOfPhysicalMemory):
            phys.alloc_file(1)
        assert phys.available_bytes() == 0

    def test_unlimited_capacity_reports_none(self):
        assert PhysicalMemory().available_bytes() is None

    def test_used_bytes_sums_pools(self):
        phys = PhysicalMemory()
        phys.alloc_anon(1)
        phys.alloc_file(2)
        assert phys.used_bytes == 3 * PAGE_SIZE
