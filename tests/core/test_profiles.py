"""Unit tests for the profile store (§4.5.2)."""

import pytest

from repro.core.profiles import (
    MAX_SAMPLES,
    PRIOR_CPU_SECONDS,
    PRIOR_LIVE_BYTES,
    ProfileStore,
    ReclaimProfile,
)


@pytest.fixture
def store():
    return ProfileStore()


def test_profile_rejects_negative_values():
    with pytest.raises(ValueError):
        ReclaimProfile(-1, 0.1)
    with pytest.raises(ValueError):
        ReclaimProfile(1, -0.1)


def test_estimate_uses_own_history_first(store):
    store.record(1, "fft", ReclaimProfile(10_000, 0.01))
    store.record(1, "fft", ReclaimProfile(20_000, 0.03))
    store.record(2, "fft", ReclaimProfile(999_999, 9.9))
    live, cpu = store.estimate(1, "fft")
    assert live == pytest.approx(15_000)
    assert cpu == pytest.approx(0.02)


def test_new_instance_borrows_same_function_average(store):
    """§4.5.2: instances of the same function share memory behaviour."""
    store.record(1, "fft", ReclaimProfile(10_000, 0.01))
    store.record(2, "fft", ReclaimProfile(30_000, 0.03))
    live, cpu = store.estimate(99, "fft")
    assert live == pytest.approx(20_000)
    assert cpu == pytest.approx(0.02)


def test_unknown_function_falls_back_to_global_average(store):
    store.record(1, "fft", ReclaimProfile(10_000, 0.01))
    store.record(2, "sort", ReclaimProfile(30_000, 0.03))
    live, _cpu = store.estimate(99, "never-seen")
    assert live == pytest.approx(20_000)


def test_empty_store_returns_priors(store):
    live, cpu = store.estimate(1, "anything")
    assert live == PRIOR_LIVE_BYTES
    assert cpu == PRIOR_CPU_SECONDS


def test_drop_instance_forgets_history_keeps_function_prior(store):
    store.record(1, "fft", ReclaimProfile(10_000, 0.01))
    store.drop_instance(1)
    assert not store.has_history(1)
    live, _ = store.estimate(2, "fft")
    assert live == pytest.approx(10_000)


def test_history_bounded(store):
    for i in range(MAX_SAMPLES * 3):
        store.record(1, "fft", ReclaimProfile(i, 0.01))
    assert len(store._by_instance[1]) == MAX_SAMPLES


def test_drop_unknown_instance_is_noop(store):
    store.drop_instance(12345)
