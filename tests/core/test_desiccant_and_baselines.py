"""Unit/integration tests for the Desiccant manager and the baselines."""

import pytest

from repro.core import (
    ActivationController,
    Desiccant,
    DesiccantConfig,
    EagerGcManager,
    SwapManager,
    VanillaManager,
)
from repro.faas.instance import FunctionInstance, InstanceState
from repro.mem.layout import GIB, MIB
from repro.workloads.registry import get_definition


class FakePlatform:
    """Minimal PlatformView for driving managers directly."""

    def __init__(self, instances, capacity_bytes=1 * GIB, idle=1.0):
        self._instances = instances
        self.capacity_bytes = capacity_bytes
        self._idle = idle

    def frozen_instances(self):
        return [i for i in self._instances if i.state is InstanceState.FROZEN]

    def frozen_bytes(self):
        return sum(i.uss() for i in self.frozen_instances())

    def idle_cpu_share(self):
        return self._idle


def frozen_instance(name="sort", invocations=3):
    spec = get_definition(name).stages[0]
    inst = FunctionInstance(spec)
    inst.boot()
    for _ in range(invocations):
        inst.invoke(0.0)
    inst.freeze(0.0)
    return inst


class TestDesiccantStep:
    def test_idle_below_threshold(self):
        desiccant = Desiccant()
        inst = frozen_instance()
        platform = FakePlatform([inst], capacity_bytes=8 * GIB)
        assert desiccant.step(now=100.0, platform=platform) == 0.0
        assert desiccant.reports == []
        inst.destroy()

    def test_reclaims_down_to_target(self):
        desiccant = Desiccant(
            activation=ActivationController(floor=0.05, ceiling=0.05, hysteresis=0.0)
        )
        instances = [frozen_instance() for _ in range(3)]
        platform = FakePlatform(instances, capacity_bytes=1 * GIB)
        before = platform.frozen_bytes()
        cpu = desiccant.step(now=100.0, platform=platform)
        assert cpu > 0
        assert platform.frozen_bytes() < before
        assert len(desiccant.reports) >= 1
        for inst in instances:
            inst.destroy()

    def test_respects_freeze_timeout(self):
        desiccant = Desiccant(
            config=DesiccantConfig(freeze_timeout_seconds=50.0),
            activation=ActivationController(floor=0.01, ceiling=0.01),
        )
        inst = frozen_instance()
        platform = FakePlatform([inst], capacity_bytes=256 * MIB)
        desiccant.step(now=10.0, platform=platform)  # frozen for only 10 s
        assert desiccant.reports == []
        desiccant.step(now=100.0, platform=platform)
        assert len(desiccant.reports) == 1
        inst.destroy()

    def test_eviction_lowers_threshold_and_drops_profiles(self):
        desiccant = Desiccant()
        desiccant.activation.advance(now=100.0)
        raised = desiccant.activation.threshold
        inst = frozen_instance()
        desiccant.on_eviction(inst, now=100.0)
        assert desiccant.activation.threshold < raised
        inst.destroy()

    def test_non_aggressive_by_default(self):
        assert DesiccantConfig().aggressive is False

    def test_bounded_reclaims_per_step(self):
        desiccant = Desiccant(
            config=DesiccantConfig(max_reclaims_per_step=2, freeze_timeout_seconds=0),
            activation=ActivationController(floor=0.01, ceiling=0.01, hysteresis=0.0),
        )
        instances = [frozen_instance("time", 1) for _ in range(5)]
        platform = FakePlatform(instances, capacity_bytes=64 * MIB)
        desiccant.step(now=100.0, platform=platform)
        assert len(desiccant.reports) <= 2
        for inst in instances:
            inst.destroy()


class TestBaselines:
    def test_vanilla_is_inert(self):
        manager = VanillaManager()
        inst = frozen_instance()
        platform = FakePlatform([inst])
        assert manager.on_invocation_end(inst, 0.0) == 0.0
        assert manager.step(0.0, platform) == 0.0
        inst.destroy()

    def test_eager_runs_gc_on_exit(self):
        manager = EagerGcManager()
        spec = get_definition("sort").stages[0]
        inst = FunctionInstance(spec)
        inst.boot()
        inst.invoke()
        seconds = manager.on_invocation_end(inst, 0.0)
        assert seconds > 0
        assert manager.gc_count == 1
        assert inst.runtime.full_gc_count >= 1
        inst.destroy()

    def test_swap_pushes_pages_out_under_pressure(self):
        manager = SwapManager(
            activation=ActivationController(floor=0.01, ceiling=0.01, hysteresis=0.0),
            freeze_timeout=0.0,
        )
        inst = frozen_instance()
        platform = FakePlatform([inst], capacity_bytes=64 * MIB)
        manager.step(now=100.0, platform=platform)
        assert manager.swapped_instances == 1
        assert inst.runtime.space.physical.swap.pages > 0
        assert inst.uss() < 1 * MIB
        inst.destroy()

    def test_swap_requires_frozen(self):
        manager = SwapManager()
        spec = get_definition("sort").stages[0]
        inst = FunctionInstance(spec)
        inst.boot()
        with pytest.raises(RuntimeError):
            manager.swap_out(inst)
        inst.destroy()

    def test_swapped_instance_pays_major_faults_on_resume(self):
        manager = SwapManager()
        inst = frozen_instance()
        manager.swap_out(inst)
        inst.thaw()
        result = inst.invoke()
        assert inst.runtime.space.faults.major > 0
        assert result.fault_seconds > 0
        inst.destroy()
