"""Unit tests for throughput-ranked instance selection (§4.5.2)."""

import pytest

from repro.core.profiles import ProfileStore, ReclaimProfile
from repro.core.selection import MIN_CPU_SECONDS, estimated_throughput, rank_candidates
from repro.faas.instance import FunctionInstance
from repro.mem.layout import MIB
from repro.workloads.registry import get_definition


def frozen_instance(name="file-hash", invocations=2, now=0.0):
    spec = get_definition(name).stages[0]
    inst = FunctionInstance(spec)
    inst.boot()
    for _ in range(invocations):
        inst.invoke(now)
    inst.freeze(now)
    return inst


class TestFormula:
    def test_paper_formula(self):
        # (heap - live) / cpu
        assert estimated_throughput(10 * MIB, 2 * MIB, 0.01) == pytest.approx(
            8 * MIB / 0.01
        )

    def test_live_above_heap_clamps_to_zero(self):
        assert estimated_throughput(1 * MIB, 5 * MIB, 0.01) == 0.0

    def test_zero_cpu_estimate_uses_floor(self):
        result = estimated_throughput(10 * MIB, 0, 0.0)
        assert result == pytest.approx(10 * MIB / MIN_CPU_SECONDS)


class TestRanking:
    def test_only_frozen_past_timeout_considered(self):
        store = ProfileStore()
        young = frozen_instance(now=9.5)
        old = frozen_instance(now=0.0)
        ranked = rank_candidates([young, old], store, now=10.0, freeze_timeout=2.0)
        assert [inst for _, inst in ranked] == [old]
        young.destroy()
        old.destroy()

    def test_running_instances_excluded(self):
        store = ProfileStore()
        inst = frozen_instance()
        inst.thaw()
        assert rank_candidates([inst], store, now=100.0) == []
        inst.destroy()

    def test_already_reclaimed_skipped(self):
        store = ProfileStore()
        inst = frozen_instance()
        inst.reclaimed_this_freeze = True
        assert rank_candidates([inst], store, now=100.0) == []
        inst.destroy()

    def test_highest_estimated_throughput_first(self):
        store = ProfileStore()
        small = frozen_instance("time")
        big = frozen_instance("image-resize")
        # Equal-cost profiles: the bigger reclaimable heap must rank first.
        store.record(small.id, small.spec.name, ReclaimProfile(512 * 1024, 0.01))
        store.record(big.id, big.spec.name, ReclaimProfile(2 * MIB, 0.01))
        ranked = rank_candidates([small, big], store, now=100.0)
        assert ranked[0][1] is big
        assert ranked[0][0] >= ranked[1][0]
        small.destroy()
        big.destroy()

    def test_ranking_is_deterministic_permutation(self):
        store = ProfileStore()
        instances = [frozen_instance("sort") for _ in range(4)]
        a = rank_candidates(instances, store, now=100.0)
        b = rank_candidates(list(reversed(instances)), store, now=100.0)
        assert [i.id for _, i in a] == [i.id for _, i in b]
        assert {i.id for _, i in a} == {i.id for i in instances}
        for inst in instances:
            inst.destroy()
