"""Unit tests for the reclamation workflow and the §4.6 library unmap."""

import pytest

from repro.core.libunmap import unmap_solo_libraries
from repro.core.profiles import ProfileStore
from repro.core.reclaimer import reclaim_instance
from repro.faas.instance import FunctionInstance
from repro.faas.libraries import SharedLibraryPool
from repro.mem.accounting import measure
from repro.mem.layout import MIB
from repro.mem.physical import PhysicalMemory
from repro.runtime.hotspot import HotSpotRuntime
from repro.workloads.registry import get_definition


def build_instance(shared: bool):
    physical = PhysicalMemory()
    shared_files = None
    if shared:
        pool = SharedLibraryPool(physical, runtime_classes=(HotSpotRuntime,))
        shared_files = pool.files
    spec = get_definition("file-hash").stages[0]
    inst = FunctionInstance(spec, physical=physical, shared_files=shared_files)
    inst.boot()
    for _ in range(3):
        inst.invoke()
    inst.freeze()
    return inst


class TestLibUnmap:
    def test_private_libraries_released(self):
        inst = build_instance(shared=False)
        before = inst.uss()
        released = unmap_solo_libraries(inst.runtime.space)
        assert released > 10 * MIB  # libjvm + base libraries
        assert inst.uss() == before - released
        inst.destroy()

    def test_shared_libraries_untouched(self):
        inst = build_instance(shared=True)
        assert unmap_solo_libraries(inst.runtime.space) == 0
        inst.destroy()

    def test_unmapped_library_refaults_on_use(self):
        inst = build_instance(shared=False)
        unmap_solo_libraries(inst.runtime.space)
        inst.thaw()
        inst.invoke()  # must not crash; library pages come back from disk
        inst.destroy()


class TestReclaimInstance:
    def test_reclaim_records_profile(self):
        inst = build_instance(shared=True)
        store = ProfileStore()
        report = reclaim_instance(inst, store)
        assert store.has_history(inst.id)
        live, cpu = store.estimate(inst.id, inst.spec.name)
        assert live == report.live_bytes
        assert cpu == pytest.approx(report.cpu_seconds)
        inst.destroy()

    def test_reclaim_combines_heap_and_library_release(self):
        inst = build_instance(shared=False)
        report = reclaim_instance(inst, ProfileStore(), unmap_libraries=True)
        assert report.library_bytes > 0
        assert report.released_bytes > report.library_bytes
        assert report.uss_after < report.uss_before
        inst.destroy()

    def test_unmap_can_be_disabled(self):
        inst = build_instance(shared=False)
        report = reclaim_instance(inst, ProfileStore(), unmap_libraries=False)
        assert report.library_bytes == 0
        inst.destroy()

    def test_cpu_share_stretches_wall_time_not_cpu(self):
        """The §4.5.2 accounting: less idle CPU -> longer wall clock, same
        accumulated CPU seconds."""
        full = build_instance(shared=True)
        half = build_instance(shared=True)
        r_full = reclaim_instance(full, ProfileStore(), cpu_share=1.0)
        r_half = reclaim_instance(half, ProfileStore(), cpu_share=0.5)
        assert r_half.wall_seconds > r_full.wall_seconds
        assert r_half.cpu_seconds == pytest.approx(r_half.wall_seconds * 0.5)
        full.destroy()
        half.destroy()

    def test_invalid_cpu_share_rejected(self):
        inst = build_instance(shared=True)
        with pytest.raises(ValueError):
            reclaim_instance(inst, ProfileStore(), cpu_share=0.0)
        inst.destroy()

    def test_sets_reclaimed_flag(self):
        inst = build_instance(shared=True)
        reclaim_instance(inst, ProfileStore())
        assert inst.reclaimed_this_freeze is True
        inst.destroy()
