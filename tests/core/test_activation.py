"""Unit tests for the dynamic activation threshold (§4.5.1)."""

import pytest

from repro.core.activation import ActivationController


def test_starts_at_floor():
    ctl = ActivationController(floor=0.6)
    assert ctl.threshold == 0.6


def test_invalid_bounds_rejected():
    with pytest.raises(ValueError):
        ActivationController(floor=0.9, ceiling=0.5)
    with pytest.raises(ValueError):
        ActivationController(floor=0.0)


def test_activates_above_threshold_only():
    ctl = ActivationController(floor=0.6)
    assert not ctl.should_activate(frozen_bytes=59, capacity_bytes=100)
    assert ctl.should_activate(frozen_bytes=61, capacity_bytes=100)


def test_zero_capacity_never_activates():
    assert not ActivationController().should_activate(100, 0)


def test_threshold_relaxes_with_quiet_time():
    ctl = ActivationController(floor=0.6, ceiling=0.9, relax_per_second=0.01)
    ctl.advance(now=10.0)
    assert ctl.threshold == pytest.approx(0.7)
    ctl.advance(now=1000.0)
    assert ctl.threshold == 0.9  # capped at the ceiling


def test_eviction_snaps_back_to_floor():
    """§4.5.1: evictions mean real pressure; release more memory."""
    ctl = ActivationController(floor=0.6, relax_per_second=0.01)
    ctl.advance(now=20.0)
    assert ctl.threshold > 0.6
    ctl.on_eviction(now=20.0)
    assert ctl.threshold == 0.6
    assert ctl.evictions_seen == 1


def test_relaxation_measured_from_last_event():
    ctl = ActivationController(floor=0.6, relax_per_second=0.01)
    ctl.on_eviction(now=100.0)
    ctl.advance(now=105.0)
    assert ctl.threshold == pytest.approx(0.65)


def test_target_bytes_applies_hysteresis():
    ctl = ActivationController(floor=0.6, hysteresis=0.05)
    assert ctl.target_bytes(1000) == pytest.approx(550, abs=1)


def test_activation_counter():
    ctl = ActivationController(floor=0.5)
    ctl.should_activate(60, 100)
    ctl.should_activate(60, 100)
    assert ctl.activations == 2
