"""Cross-layer integration: the paper's headline orderings, end to end."""

import pytest

from repro.core import Desiccant, EagerGcManager, VanillaManager
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.mem.layout import MIB
from repro.trace.generator import TraceGenerator
from repro.workloads.registry import get_definition


def run_burst_platform(manager, capacity_mib=1024, seed=5):
    """A short, pressured run touching several functions."""
    platform = FaasPlatform(
        config=PlatformConfig(capacity_bytes=capacity_mib * MIB),
        manager=manager,
    )
    generator = TraceGenerator(seed=seed)
    arrivals = generator.arrivals(30.0, scale_factor=10.0)
    platform.submit([Request(arrival=t, definition=d) for t, d in arrivals])
    platform.run()
    return platform


@pytest.fixture(scope="module")
def platforms():
    result = {
        "vanilla": run_burst_platform(VanillaManager()),
        "eager": run_burst_platform(EagerGcManager()),
        "desiccant": run_burst_platform(Desiccant()),
    }
    yield result
    for platform in result.values():
        for instance in platform.all_instances():
            instance.destroy()


def test_desiccant_minimizes_cold_boots(platforms):
    desiccant = platforms["desiccant"].cold_boot_rate()
    vanilla = platforms["vanilla"].cold_boot_rate()
    eager = platforms["eager"].cold_boot_rate()
    assert desiccant <= eager
    assert desiccant <= vanilla
    # eager generally also beats vanilla, modulo noise at this small scale.
    assert eager <= vanilla * 1.15


def test_desiccant_minimizes_evictions(platforms):
    assert platforms["desiccant"].evictions <= platforms["eager"].evictions
    assert platforms["eager"].evictions <= platforms["vanilla"].evictions


def test_desiccant_frozen_footprint_smallest(platforms):
    frozen = {name: p.frozen_bytes() for name, p in platforms.items()}
    # All policies end with a similar cache population; Desiccant's is the
    # densest.
    assert frozen["desiccant"] < frozen["vanilla"]


def test_reclaim_cpu_stays_bounded(platforms):
    platform = platforms["desiccant"]
    reclaim = platform.cpu.busy.get("reclaim", 0.0)
    total = platform.cpu.total_busy()
    assert reclaim < 0.15 * max(total, 1e-9)


def test_all_policies_complete_all_requests(platforms):
    counts = {name: len(p.outcomes) for name, p in platforms.items()}
    assert len(set(counts.values())) == 1  # same requests completed


def test_functions_produce_identical_results_under_any_policy():
    """Reclamation must be invisible to function semantics: live state
    after N invocations matches across policies."""
    from repro.analysis.characterize import run_single

    runs = {
        policy: run_single("web-server", policy, iterations=15)
        for policy in ("vanilla", "eager", "desiccant")
    }
    # Weak-rooted JIT code legitimately differs (eager GC deoptimizes);
    # the *strongly* reachable state -- what the function observes -- must
    # be identical.
    live = {
        p: r.instances[0].runtime.graph.live_bytes(include_weak=False)
        for p, r in runs.items()
    }
    assert live["vanilla"] == live["eager"] == live["desiccant"]
    for run in runs.values():
        run.destroy()
