"""The memoization contract: speed may change, bytes never do.

Three layers of evidence:

* serial replays with the effect cache on and off produce byte-identical
  event traces under both ``REPRO_FASTPATH`` flavors;
* cluster replays stay byte-identical to the plain serial baseline at
  every shard count, and the summed per-shard memo counters are
  shard-count-invariant (per-process caches never coordinate, and the
  node partition fixes which process sees which invocation);
* a checkpoint captured mid-run with memoization on resumes to the same
  merged digest whether the resumed process memoizes or not -- the cache
  is flushed, never serialized, so restored runs start cold.

Plus the fingerprint-sensitivity property: mutating any single causal
input component forces a different fingerprint, which the cache can only
miss on -- a memoized run can skip work, never replay the wrong effect.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.core import VanillaManager
from repro.faas.platform import PlatformConfig
from repro.mem.layout import MIB
from repro.memo import toggle as memo_toggle
from repro.memo.cache import EffectCache
from repro.memo.effects import _fingerprint
from repro.trace.generator import TraceGenerator
from repro.trace.replay import (
    ClusterReplayConfig,
    ReplayConfig,
    cluster_replay,
    replay,
)

SCALE = 6.0
WARMUP = 10.0
DURATION = 20.0
CAPACITY = 512 * MIB


def _serial_trace(tmp_path: Path, memo: bool, flavor: bool, tag: str):
    path = tmp_path / f"serial-{tag}.jsonl"
    config = ReplayConfig(
        scale_factor=SCALE,
        warmup_seconds=WARMUP,
        warmup_scale_factor=SCALE,
        duration_seconds=DURATION,
        platform=PlatformConfig(capacity_bytes=CAPACITY),
        event_trace_path=str(path),
    )
    with fastpath.override(flavor), memo_toggle.override(memo):
        result = replay(VanillaManager, config, TraceGenerator(seed=42))
    return path.read_bytes(), result.memo_stats


def _cluster_trace(tmp_path: Path, memo: bool, shards: int, tag: str, **kw):
    path = tmp_path / f"cluster-{tag}.jsonl"
    config = ClusterReplayConfig(
        nodes=4,
        shards=shards,
        epoch_seconds=2.0,
        scale_factor=SCALE,
        warmup_seconds=WARMUP,
        warmup_scale_factor=SCALE,
        duration_seconds=DURATION,
        platform=PlatformConfig(capacity_bytes=CAPACITY),
        trace=True,
        event_trace_path=str(path),
        **kw,
    )
    with memo_toggle.override(memo):
        result = cluster_replay(VanillaManager, config, TraceGenerator(seed=42))
    return result


class TestSerialIdentity:
    @pytest.mark.parametrize("flavor", [True, False], ids=["fast", "base"])
    def test_memo_on_matches_memo_off(self, tmp_path, flavor):
        plain, no_stats = _serial_trace(tmp_path, False, flavor, f"off-{flavor}")
        memoed, stats = _serial_trace(tmp_path, True, flavor, f"on-{flavor}")
        assert no_stats is None
        assert stats is not None and stats["hits"] + stats["misses"] > 0
        assert plain  # a trace was actually written
        assert hashlib.sha256(memoed).digest() == hashlib.sha256(plain).digest()

    def test_memo_exercises_the_hit_path(self, tmp_path):
        # The workload must actually revisit trajectories, otherwise the
        # identity above only ever tests the miss/capture path.
        _, stats = _serial_trace(tmp_path, True, True, "hits")
        assert stats["hits"] > 0


class TestClusterIdentity:
    def test_byte_identical_across_shard_counts(self, tmp_path):
        baseline = _cluster_trace(tmp_path, False, 1, "plain").trace_sha256
        seen_stats = []
        for shards in (1, 2, 4):
            result = _cluster_trace(tmp_path, True, shards, f"memo-s{shards}")
            assert result.trace_sha256 == baseline, f"shards={shards}"
            assert result.memo_stats is not None
            seen_stats.append(result.memo_stats)
        # Shard-count invariance by construction: per-process caches never
        # coordinate, so the summed counters cannot depend on the split.
        assert seen_stats[0] == seen_stats[1] == seen_stats[2]
        assert seen_stats[0]["hits"] > 0


class TestCheckpointGate:
    def test_resume_is_identical_under_both_memo_flavors(self, tmp_path):
        baseline = _cluster_trace(tmp_path, False, 2, "plain").trace_sha256
        ckpt_dir = tmp_path / "ckpts"
        captured = _cluster_trace(
            tmp_path,
            True,
            2,
            "capture",
            checkpoint_dir=str(ckpt_dir),
            checkpoint_every=4,
        )
        assert captured.trace_sha256 == baseline
        assert captured.checkpoints, "no checkpoint was captured"
        last = str(captured.checkpoints[-1])
        for memo in (True, False):
            resumed = _cluster_trace(
                tmp_path, memo, 2, f"resume-{memo}", resume_from=last
            )
            assert resumed.trace_sha256 == baseline, f"resume memo={memo}"


# --------------------------------------------------------- fingerprint


class _Box:
    pass


def _instance(ident, context, runtime_sig, space_sig, draws, invocations, used):
    instance, runtime, space, physical = _Box(), _Box(), _Box(), _Box()
    model, rng = _Box(), _Box()
    physical.capacity_bytes = CAPACITY
    physical.used_bytes = used
    space.physical = physical
    space._memo_sig = space_sig
    runtime.space = space
    runtime._memo_sig = runtime_sig
    runtime.invocations = invocations
    rng.draws = draws
    model._rng = rng
    model._memo_ident = ident
    instance.runtime = runtime
    instance.model = model
    instance.memo_context = context
    return instance


_COMPONENTS = st.tuples(
    st.text(min_size=1, max_size=8),  # model identity
    st.integers(0, 2**32),  # instance memo context
    st.integers(0, 2**64 - 1),  # runtime digest
    st.integers(0, 2**64 - 1),  # space digest
    st.integers(0, 2**20),  # rng draws
    st.integers(0, 2**20),  # runtime invocations
    st.integers(0, CAPACITY),  # platform used bytes (pressure)
)


class TestFingerprintSensitivity:
    @given(base=_COMPONENTS, which=st.integers(0, 6), delta=st.integers(1, 997))
    @settings(max_examples=200, deadline=None)
    def test_any_causal_mutation_forces_a_miss(self, base, which, delta):
        original = _fingerprint(_instance(*base))
        mutated_components = list(base)
        if which == 0:
            mutated_components[0] = base[0] + "'"
        else:
            mutated_components[which] = base[which] + delta
        mutated = _fingerprint(_instance(*mutated_components))
        assert mutated != original

        cache = EffectCache()
        entry = _Box()
        entry.cost = 1
        cache.put(original, entry)
        # The recorded effect replays only at the exact causal state; any
        # mutated state misses -- never a wrong hit.
        assert cache.get(mutated) is None
        assert cache.get(original) is not None

    @given(base=_COMPONENTS)
    @settings(max_examples=50, deadline=None)
    def test_identical_state_is_a_stable_key(self, base):
        assert _fingerprint(_instance(*base)) == _fingerprint(_instance(*base))
