"""Stat-keyed parse cache: hit/miss accounting and file-change invalidation."""

from __future__ import annotations

import os

import pytest

from repro.memo import statcache


@pytest.fixture(autouse=True)
def clean_cache():
    statcache.reset()
    yield
    statcache.reset()


def _touch(path, text, mtime_ns=None):
    path.write_text(text)
    if mtime_ns is not None:
        os.utime(path, ns=(mtime_ns, mtime_ns))


class TestCachedParse:
    def test_parses_once_per_file_identity(self, tmp_path):
        path = tmp_path / "data.csv"
        _touch(path, "alpha")
        calls = []

        def parser(p):
            calls.append(p)
            return p.read_text()

        assert statcache.cached_parse(path, parser) == "alpha"
        assert statcache.cached_parse(path, parser) == "alpha"
        assert len(calls) == 1
        stats = statcache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1

    def test_changed_file_invalidates(self, tmp_path):
        path = tmp_path / "data.csv"
        _touch(path, "alpha", mtime_ns=1_000_000_000)
        parser = lambda p: p.read_text()  # noqa: E731
        assert statcache.cached_parse(path, parser) == "alpha"
        # same size, different mtime -- an in-place rewrite
        _touch(path, "bravo", mtime_ns=2_000_000_000)
        assert statcache.cached_parse(path, parser) == "bravo"
        # different size, same mtime -- a replaced file
        _touch(path, "charlie!", mtime_ns=2_000_000_000)
        assert statcache.cached_parse(path, parser) == "charlie!"
        assert statcache.stats()["invalidations"] == 2

    def test_tags_namespace_parsers_over_one_file(self, tmp_path):
        path = tmp_path / "data.csv"
        _touch(path, "alpha")
        upper = statcache.cached_parse(path, lambda p: p.read_text().upper(), tag="u")
        lower = statcache.cached_parse(path, lambda p: p.read_text(), tag="l")
        assert (upper, lower) == ("ALPHA", "alpha")
        assert statcache.stats()["entries"] == 2

    def test_missing_file_raises_not_caches(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            statcache.cached_parse(tmp_path / "absent.csv", lambda p: None)
        assert statcache.stats()["entries"] == 0

    def test_entry_cap_bounds_the_table(self, tmp_path):
        for i in range(statcache.MAX_ENTRIES + 5):
            path = tmp_path / f"f{i}.csv"
            _touch(path, str(i))
            statcache.cached_parse(path, lambda p: p.read_text())
        assert statcache.stats()["entries"] == statcache.MAX_ENTRIES

    def test_reset_drops_entries_and_counters(self, tmp_path):
        path = tmp_path / "data.csv"
        _touch(path, "alpha")
        statcache.cached_parse(path, lambda p: p.read_text())
        statcache.reset()
        assert statcache.stats() == {
            "hits": 0, "misses": 0, "invalidations": 0, "entries": 0,
        }


class TestAzureLoaderIntegration:
    """The loader's contract on top of the cache: fresh containers out,
    re-parse only when the CSV actually changed."""

    def _write_csv(self, path, rows):
        from tests.trace.test_azure_loader import write_invocations_csv

        write_invocations_csv(path, rows)

    def test_repeat_loads_hit_the_cache_and_copy_out(self, tmp_path):
        from repro.trace.azure_loader import load_invocation_counts

        path = tmp_path / "inv.csv"
        self._write_csv(path, [("o", "a", "f", "timer", [1, 2, 3])])
        first = load_invocation_counts(path)
        second = load_invocation_counts(path)
        assert first == second
        assert first is not second  # mutating one load cannot leak
        assert statcache.stats()["hits"] == 1

    def test_rewritten_csv_reparses(self, tmp_path):
        from repro.trace.azure_loader import load_invocation_counts

        path = tmp_path / "inv.csv"
        self._write_csv(path, [("o", "a", "f", "timer", [1])])
        os.utime(path, ns=(1_000_000_000, 1_000_000_000))
        assert load_invocation_counts(path)[0].per_minute[0] == 1
        self._write_csv(path, [("o", "a", "f", "timer", [9])])
        os.utime(path, ns=(2_000_000_000, 2_000_000_000))
        assert load_invocation_counts(path)[0].per_minute[0] == 9
        assert statcache.stats()["invalidations"] == 1
