"""Unit tests for the bounded effect-cache LRU (repro.memo.cache)."""

from __future__ import annotations

from repro.memo.cache import EffectCache


class _Entry:
    def __init__(self, cost: int) -> None:
        self.cost = cost


class TestEffectCache:
    def test_hit_miss_counters(self):
        cache = EffectCache()
        assert cache.get("k") is None
        entry = _Entry(cost=10)
        cache.put("k", entry)
        assert cache.get("k") is entry
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["cached_bytes"] == 10

    def test_entry_cap_evicts_least_recent(self):
        cache = EffectCache(max_entries=2)
        cache.put("a", _Entry(1))
        cache.put("b", _Entry(1))
        assert cache.get("a") is not None  # refresh a; b is now oldest
        cache.put("c", _Entry(1))
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None
        assert cache.evictions == 1

    def test_byte_cap_evicts_until_under_budget(self):
        cache = EffectCache(max_bytes=100)
        cache.put("a", _Entry(60))
        cache.put("b", _Entry(60))  # 120 > 100: a must go
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["cached_bytes"] == 60
        assert cache.get("a") is None and cache.get("b") is not None

    def test_replacing_an_entry_adjusts_bytes(self):
        cache = EffectCache()
        cache.put("k", _Entry(40))
        cache.put("k", _Entry(10))
        assert cache.cached_bytes == 10 and len(cache._entries) == 1

    def test_drain_resets_counters_but_keeps_entries(self):
        cache = EffectCache()
        cache.put("k", _Entry(5))
        cache.get("k")
        cache.get("absent")
        first = cache.drain_stats()
        assert first["hits"] == 1 and first["misses"] == 1
        second = cache.drain_stats()
        assert second["hits"] == 0 and second["misses"] == 0
        # Entries survive the drain, so per-window reports sum cleanly.
        assert second["entries"] == 1 and cache.get("k") is not None

    def test_reset_drops_everything(self):
        cache = EffectCache()
        cache.put("k", _Entry(5))
        cache.get("k")
        cache.reset()
        stats = cache.stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "cached_bytes": 0,
            "entries": 0,
        }

    def test_first_touch_admission_default(self):
        cache = EffectCache()
        assert cache.admit("new-key") is True

    def test_two_touch_admission(self):
        cache = EffectCache(admit_threshold=2)
        assert cache.admit("k") is False  # first sighting: candidate only
        assert cache.admit("k") is True  # second sighting: record
        assert cache.admit("other") is False

    def test_two_touch_candidate_set_is_bounded(self):
        cache = EffectCache(max_entries=2, admit_threshold=2)
        for i in range(20):
            cache.admit(f"one-shot-{i}")
        assert len(cache._candidates) <= cache.max_entries * 4
