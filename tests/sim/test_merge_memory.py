"""Regression test for merge_trace_files' constant-memory guarantee.

``merge_trace_files`` documents that peak memory is bounded by one read
buffer per input file plus one in-flight record -- independent of file
sizes.  A naive implementation (read all spills, sort) would blow
through the budget here by an order of magnitude: 7 spills x 15k lines
is ~10 MB of line data alone, and we hold the merge to a hard
``tracemalloc`` peak far below that headroom times the pre-merge
baseline.
"""

from __future__ import annotations

import json
import tracemalloc

from repro.sim.shard import merge_trace_files, sha256_lines
from repro.trace.archive import ArchiveReader

SPILLS = 7
LINES_PER_SPILL = 15_000  # 7 x 15k = 105k lines total
PEAK_BUDGET = 32 * 1024 * 1024  # hard cap, bytes

#: Padding makes each record ~100 bytes, so the full dataset is ~10 MiB
#: -- comfortably larger than the peak budget's working-set share if the
#: merge ever buffered whole files.
PAD = "x" * 40


def _spill_files(tmp_path):
    """Write SPILLS sorted per-node spill files; return (paths, flat).

    Spill ``k`` owns node ``k``: each file is sorted by ``(t, node,
    seq)`` as ``merge_trace_files`` requires, with interleaved
    timestamps across spills so the heap merge actually alternates
    between inputs instead of draining them one by one.
    """
    paths = []
    everything = []
    for spill in range(SPILLS):
        path = tmp_path / f"spill-{spill}.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for seq in range(LINES_PER_SPILL):
                t = float(seq) + spill / 10.0
                line = json.dumps(
                    {"seq": seq, "t": t, "node": spill, "pad": PAD},
                    separators=(",", ":"),
                )
                handle.write(line + "\n")
                everything.append(((t, spill, seq), line))
        paths.append(path)
    everything.sort(key=lambda pair: pair[0])
    return paths, [line for _, line in everything]


def _merged_peak(fn):
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_merge_trace_files_is_constant_memory(tmp_path):
    paths, flat = _spill_files(tmp_path)
    out = tmp_path / "merged.jsonl"

    (events, sha), peak = _merged_peak(
        lambda: merge_trace_files(paths, out_path=out)
    )

    assert events == SPILLS * LINES_PER_SPILL
    assert (events, sha) == sha256_lines(flat)
    assert out.read_text(encoding="utf-8") == "".join(
        line + "\n" for line in flat
    )
    assert peak < PEAK_BUDGET, (
        f"merge peak {peak / 2**20:.1f} MiB exceeds the "
        f"{PEAK_BUDGET / 2**20:.0f} MiB constant-memory budget"
    )


def test_merge_into_archive_is_constant_memory(tmp_path):
    """The archive_dir fast path must stream too: the ArchiveWriter holds
    one open compressor per node, never the merged stream."""
    paths, flat = _spill_files(tmp_path)
    root = tmp_path / "archive"

    (events, sha), peak = _merged_peak(
        lambda: merge_trace_files(
            paths, archive_dir=root, archive_bucket_seconds=1000.0
        )
    )

    assert events == SPILLS * LINES_PER_SPILL
    assert (events, sha) == sha256_lines(flat)
    assert peak < PEAK_BUDGET, (
        f"archive merge peak {peak / 2**20:.1f} MiB exceeds the "
        f"{PEAK_BUDGET / 2**20:.0f} MiB constant-memory budget"
    )

    reader = ArchiveReader(root)
    assert reader.manifest["sha256"] == sha
    assert reader.verify(against_sha256=sha) == []
