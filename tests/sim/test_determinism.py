"""Deterministic replay: same seed + same arrivals => byte-identical traces.

The satellite guarantee the event kernel must provide: two back-to-back
runs of the same scenario produce *byte-identical* JSONL event traces --
for a single node and a 4-node cluster, for the vanilla baseline and the
Desiccant manager.  (The trace sink normalizes process-global request and
instance ids, so this holds within one process too.)
"""

import pytest

from repro.core import Desiccant, VanillaManager
from repro.faas.cluster import Cluster, ClusterConfig
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.mem.layout import MIB
from repro.sim import EventTraceSink
from repro.trace.generator import TraceGenerator

DURATION = 20.0
SCALE = 8.0


def single_node_trace(manager_factory, seed=7):
    platform = FaasPlatform(
        config=PlatformConfig(capacity_bytes=512 * MIB, seed=seed),
        manager=manager_factory(),
    )
    sink = EventTraceSink(platform.bus)
    arrivals = TraceGenerator(seed=seed).arrivals(DURATION, scale_factor=SCALE)
    platform.submit([Request(arrival=t, definition=d) for t, d in arrivals])
    platform.run()
    for instance in platform.all_instances():
        instance.destroy()
    return sink.to_jsonl()


def cluster_trace(manager_factory, seed=7, scheduler="warm-affinity"):
    cluster = Cluster(
        ClusterConfig(
            nodes=4,
            scheduler=scheduler,
            node_config=PlatformConfig(capacity_bytes=512 * MIB, seed=seed),
        ),
        manager_factory=manager_factory,
    )
    sink = EventTraceSink(cluster.kernel.bus)
    arrivals = TraceGenerator(seed=seed).arrivals(DURATION, scale_factor=SCALE)
    cluster.submit(arrivals)
    cluster.run()
    cluster.destroy()
    return sink.to_jsonl()


@pytest.mark.parametrize("manager_factory", [VanillaManager, Desiccant])
def test_single_node_trace_is_reproducible(manager_factory):
    first = single_node_trace(manager_factory)
    second = single_node_trace(manager_factory)
    assert first != ""
    assert first == second


@pytest.mark.parametrize("manager_factory", [VanillaManager, Desiccant])
def test_cluster_trace_is_reproducible(manager_factory):
    first = cluster_trace(manager_factory)
    second = cluster_trace(manager_factory)
    assert first != ""
    assert first == second


def test_live_scheduler_trace_is_reproducible():
    first = cluster_trace(VanillaManager, scheduler="least-loaded-live")
    second = cluster_trace(VanillaManager, scheduler="least-loaded-live")
    assert first == second


def test_different_seeds_differ():
    assert single_node_trace(VanillaManager, seed=7) != single_node_trace(
        VanillaManager, seed=8
    )
