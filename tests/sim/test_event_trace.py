"""Tests for the JSONL event-trace sink over a real platform run."""

import json

from repro.core import Desiccant
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.mem.layout import MIB
from repro.sim import EventTraceSink
from repro.workloads.registry import get_definition


def run_traced(manager=None, count=4, **config):
    platform = FaasPlatform(config=PlatformConfig(**config), manager=manager)
    sink = EventTraceSink(platform.bus)
    definition = get_definition("file-hash")
    platform.submit(
        [Request(arrival=i * 1.0, definition=definition) for i in range(count)]
    )
    platform.run()
    return platform, sink


class TestEventTraceSink:
    def test_records_the_platform_lifecycle(self):
        _platform, sink = run_traced()
        kinds = [json.loads(line)["kind"] for line in sink.lines]
        assert "request-arrival" in kinds
        assert "cold-boot" in kinds
        assert "thaw" in kinds
        assert "freeze" in kinds
        assert "request-done" in kinds

    def test_step_events_are_excluded_by_default(self):
        _platform, sink = run_traced()
        assert all(json.loads(line)["kind"] != "step" for line in sink.lines)

    def test_every_line_is_valid_json_with_schema_fields(self):
        _platform, sink = run_traced()
        for line in sink.lines:
            record = json.loads(line)
            assert {"seq", "t", "node", "kind"} <= set(record)

    def test_trace_is_time_ordered(self):
        _platform, sink = run_traced()
        times = [json.loads(line)["t"] for line in sink.lines]
        assert times == sorted(times)
        seqs = [json.loads(line)["seq"] for line in sink.lines]
        assert seqs == sorted(seqs)

    def test_nested_publishes_stay_seq_ordered(self):
        # The eager manager makes the bridge publish a nested ``gc`` from
        # inside the ``invocation-end`` dispatch; run-to-completion
        # delivery must keep the trace in seq order regardless of the
        # sink's position in the subscription list.
        from repro.core import EagerGcManager

        _platform, sink = run_traced(manager=EagerGcManager())
        records = [json.loads(line) for line in sink.lines]
        assert any(r["kind"] == "gc" for r in records)
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)

    def test_ids_are_normalized_to_dense_indexes(self):
        _platform, sink = run_traced()
        request_ids = {
            json.loads(line)["request_id"]
            for line in sink.lines
            if json.loads(line)["kind"] == "request-arrival"
        }
        assert request_ids == set(range(1, len(request_ids) + 1))
        instance_ids = {
            json.loads(line).get("instance_id")
            for line in sink.lines
            if json.loads(line)["kind"] == "cold-boot"
        }
        assert min(instance_ids) == 1

    def test_object_references_are_not_serialized(self):
        _platform, sink = run_traced()
        for line in sink.lines:
            assert "instance\":" not in line.replace("instance_id", "")

    def test_reclaim_events_appear_under_pressure(self):
        from repro.core import ActivationController

        desiccant = Desiccant(activation=ActivationController(floor=0.1, ceiling=0.1))
        desiccant.config.freeze_timeout_seconds = 0.1
        platform = FaasPlatform(
            config=PlatformConfig(capacity_bytes=512 * MIB), manager=desiccant
        )
        sink = EventTraceSink(platform.bus)
        for name in ("sort", "file-hash", "fft"):
            definition = get_definition(name)
            platform.submit(
                [
                    Request(arrival=platform.now + 5.0 + i * 2.0, definition=definition)
                    for i in range(2)
                ]
            )
            platform.run()
        assert len(desiccant.reports) > 0
        kinds = [json.loads(line)["kind"] for line in sink.lines]
        assert "reclaim-start" in kinds
        assert "reclaim-done" in kinds

    def test_detach_stops_recording(self):
        platform, sink = run_traced()
        n = len(sink)
        sink.detach()
        platform.submit(
            [Request(arrival=platform.now + 1.0, definition=get_definition("clock"))]
        )
        platform.run()
        assert len(sink) == n

    def test_streaming_write(self, tmp_path):
        platform = FaasPlatform()
        path = tmp_path / "trace.jsonl"
        sink = EventTraceSink(platform.bus, path=path)
        platform.submit([Request(arrival=0.0, definition=get_definition("clock"))])
        platform.run()
        sink.detach()
        lines = path.read_text().splitlines()
        assert lines == sink.lines

    def test_write_collected(self, tmp_path):
        _platform, sink = run_traced()
        path = sink.write(tmp_path / "out" / "trace.jsonl")
        assert path.read_text() == sink.to_jsonl()
