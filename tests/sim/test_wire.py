"""Fidelity and framing tests for the shard wire codec.

The shard pool's digest-identity guarantee leans on ``decode(encode(x))``
being indistinguishable from ``x`` for everything the window protocol
ships: horizons (floats compared with ``==`` across processes), payload
tuples (tuple-ness affects downstream hashing), interning preambles
(dicts of definitions via the pickle escape), and report dicts.  These
tests pin the contract directly; ``tests/faas/test_sharded_cluster.py``
covers it end to end.
"""

import math
import struct

import pytest

from repro.sim.wire import WireError, decode, encode, recv_frame, send_frame


def roundtrip(obj):
    return decode(encode(obj))


class TestScalars:
    def test_singletons(self):
        assert roundtrip(None) is None
        assert roundtrip(True) is True
        assert roundtrip(False) is False

    def test_ints(self):
        for value in (0, 1, -1, 2**62, -(2**63), 2**63 - 1):
            out = roundtrip(value)
            assert out == value and type(out) is int

    def test_big_ints_take_the_pickle_escape(self):
        for value in (2**63, -(2**63) - 1, 10**40, -(10**40)):
            assert roundtrip(value) == value

    def test_floats_bit_exact(self):
        values = [0.0, -0.0, 1.5, -1e308, 5e-324, math.inf, -math.inf]
        for value in values:
            out = roundtrip(value)
            assert struct.pack(">d", out) == struct.pack(">d", value)

    def test_nan_preserves_bits(self):
        out = roundtrip(math.nan)
        assert struct.pack(">d", out) == struct.pack(">d", math.nan)

    def test_bool_is_not_int_on_the_wire(self):
        # True/False must come back as bools, not 1/0: payloads use them
        # as flags and ``type() is`` dispatch would misroute ints.
        assert roundtrip([True, 1, False, 0]) == [True, 1, False, 0]
        out = roundtrip((True, 0))
        assert type(out[0]) is bool and type(out[1]) is int

    def test_strings(self):
        for value in ("", "plain", "café", "☃" * 100):
            assert roundtrip(value) == value

    def test_bytes(self):
        for value in (b"", b"\x00\xff" * 10):
            assert roundtrip(value) == value


class TestContainers:
    def test_tuple_stays_tuple_and_list_stays_list(self):
        out = roundtrip((1, [2, (3,)], []))
        assert out == (1, [2, (3,)], [])
        assert type(out) is tuple
        assert type(out[1]) is list
        assert type(out[1][1]) is tuple
        assert type(out[2]) is list

    def test_empty_containers(self):
        assert roundtrip(()) == ()
        assert roundtrip([]) == []
        assert roundtrip({}) == {}

    def test_dict_roundtrip_preserves_insertion_order(self):
        src = {"b": 1, "a": 2, "c": (3.0, None)}
        out = roundtrip(src)
        assert out == src
        assert list(out) == list(src)

    def test_window_message_shape(self):
        # The hot message of the batched protocol.
        msg = (
            "window",
            [5.0, 10.0, None],
            [[(0, 1.25, "fn", 7)], [], [(1, 9.5, "gn", 8)]],
            {"fn": b"body"},
        )
        assert roundtrip(msg) == msg

    def test_arbitrary_objects_via_pickle_escape(self):
        assert roundtrip(complex(1, 2)) == complex(1, 2)
        assert roundtrip(frozenset({1, 2})) == frozenset({1, 2})
        assert roundtrip({1.5: {"nested": [b"x", ()]}}) == {
            1.5: {"nested": [b"x", ()]}
        }


class TestErrors:
    def test_truncated_scalar(self):
        with pytest.raises(WireError):
            decode(encode(1.5)[:-1])

    def test_truncated_string_body(self):
        with pytest.raises(WireError, match="truncated"):
            decode(encode("hello")[:-2])

    def test_truncated_container(self):
        with pytest.raises(WireError):
            decode(encode((1, 2, 3))[:-9])

    def test_trailing_bytes_rejected(self):
        with pytest.raises(WireError, match="trailing"):
            decode(encode(None) + b"x")

    def test_unknown_tag(self):
        with pytest.raises(WireError, match="unknown wire tag"):
            decode(b"Z")

    def test_empty_buffer(self):
        with pytest.raises(WireError):
            decode(b"")


class _FakeConn:
    """Duck-typed Connection: a byte-message queue."""

    def __init__(self):
        self.queue = []

    def send_bytes(self, data):
        self.queue.append(bytes(data))

    def recv_bytes(self):
        return self.queue.pop(0)


class TestFraming:
    def test_send_recv_roundtrip_and_byte_counts(self):
        conn = _FakeConn()
        msg = ("report", {"events": 12, "clock": 5.0})
        sent = send_frame(conn, msg)
        assert sent == len(conn.queue[0])
        out, received = recv_frame(conn)
        assert out == msg
        assert received == sent

    def test_frame_length_prefix_mismatch(self):
        conn = _FakeConn()
        send_frame(conn, "hello")
        conn.queue[0] = conn.queue[0][:-1]  # drop a body byte
        with pytest.raises(WireError, match="length prefix"):
            recv_frame(conn)

    def test_short_frame(self):
        conn = _FakeConn()
        conn.queue.append(b"\x00\x00")
        with pytest.raises(WireError, match="short frame"):
            recv_frame(conn)

    def test_eof_propagates(self):
        class _Closed:
            def recv_bytes(self):
                raise EOFError

        with pytest.raises(EOFError):
            recv_frame(_Closed())

    def test_unknown_frame_mode(self):
        conn = _FakeConn()
        send_frame(conn, "hello")
        frame = conn.queue[0]
        conn.queue[0] = frame[:4] + b"X" + frame[5:]
        with pytest.raises(WireError, match="unknown frame mode"):
            recv_frame(conn)


class TestCompression:
    def test_large_repetitive_frame_deflates(self):
        conn_raw, conn_z = _FakeConn(), _FakeConn()
        msg = [("node", 1.5, "fn-name", k) for k in range(500)]
        raw = send_frame(conn_raw, msg, compress=False)
        packed = send_frame(conn_z, msg, compress=True)
        assert packed < raw / 3
        assert recv_frame(conn_z)[0] == recv_frame(conn_raw)[0] == msg

    def test_small_frames_stay_raw(self):
        conn = _FakeConn()
        sent = send_frame(conn, ("ok", None), compress=True)
        assert conn.queue[0][4:5] == b"r"
        out, received = recv_frame(conn)
        assert out == ("ok", None) and received == sent

    def test_incompressible_body_stays_raw(self):
        import hashlib

        conn = _FakeConn()
        # High-entropy bytes: deflate cannot shrink them, so the frame
        # must fall back to raw rather than ship a bigger body.
        blob = b"".join(
            hashlib.sha256(bytes([i])).digest() for i in range(40)
        )
        send_frame(conn, blob, compress=True)
        assert conn.queue[0][4:5] == b"r"
        assert recv_frame(conn)[0] == blob

    def test_corrupt_deflated_frame(self):
        import struct as _struct

        conn = _FakeConn()
        body = b"z" + b"not-deflate-data"
        conn.queue.append(_struct.pack(">I", len(body)) + body)
        with pytest.raises(WireError, match="corrupt deflated frame"):
            recv_frame(conn)

    def test_compression_is_deterministic(self):
        a, b = _FakeConn(), _FakeConn()
        msg = {"warm": list(range(200)), "names": ["fn"] * 100}
        send_frame(a, msg, compress=True)
        send_frame(b, msg, compress=True)
        assert a.queue[0] == b.queue[0]
