"""Unit tests for the discrete-event kernel (repro.sim)."""

import pytest

from repro.sim import (
    Clock,
    Event,
    EventBus,
    EventQueue,
    RngStream,
    SimKernel,
    derive_seed,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0.0

    def test_advance_moves_forward(self):
        clock = Clock()
        clock.advance(3.5)
        assert clock.now == 3.5

    def test_advance_never_goes_backwards(self):
        clock = Clock(10.0)
        clock.advance(4.0)
        assert clock.now == 10.0

    def test_reset_is_unconditional(self):
        clock = Clock(10.0)
        clock.reset(4.0)
        assert clock.now == 4.0


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        seen = []
        for t in (5.0, 1.0, 3.0):
            queue.push(t, seen.append, t)
        while queue:
            event = queue.pop()
            event.callback(event.payload)
        assert seen == [1.0, 3.0, 5.0]

    def test_ties_resolve_by_insertion_order(self):
        queue = EventQueue()
        for tag in ("a", "b", "c"):
            queue.push(1.0, lambda x: x, tag)
        assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda x: x, "keep")
        drop = queue.push(0.5, lambda x: x, "drop")
        drop.cancel()
        assert len(queue) == 1
        assert queue.next_time() == 1.0
        assert queue.pop() is keep
        assert queue.pop() is None

    def test_empty_queue_is_falsy(self):
        queue = EventQueue()
        assert not queue
        queue.push(0.0, lambda x: x)
        assert queue


class TestRngStream:
    def test_same_seed_and_name_reproduce(self):
        a = RngStream(7, "arrivals")
        b = RngStream(7, "arrivals")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_streams_are_independent_by_name(self):
        a = RngStream(7, "arrivals")
        b = RngStream(7, "jitter")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_restart_rewinds(self):
        stream = RngStream(7, "arrivals")
        first = [stream.random() for _ in range(3)]
        stream.restart()
        assert [stream.random() for _ in range(3)] == first

    def test_derive_seed_avoids_python_hash(self):
        # crc32-based: stable across processes (hash() is salted).
        assert derive_seed(0, "arrivals") == derive_seed(0, "arrivals")
        assert derive_seed(0, "arrivals") != derive_seed(1, "arrivals")


class TestEventBus:
    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.kind), kinds=("freeze",))
        bus.publish(Event("freeze", 0.0))
        bus.publish(Event("thaw", 0.0))
        assert seen == ["freeze"]

    def test_node_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.node), node=1)
        bus.publish(Event("freeze", 0.0, node=0))
        bus.publish(Event("freeze", 0.0, node=1))
        assert seen == [1]

    def test_publish_sums_numeric_returns(self):
        bus = EventBus()
        bus.subscribe(lambda e: 0.25)
        bus.subscribe(lambda e: None)
        bus.subscribe(lambda e: 0.5)
        assert bus.publish(Event("step", 0.0)) == 0.75

    def test_bool_returns_are_not_costs(self):
        bus = EventBus()
        bus.subscribe(lambda e: True)
        assert bus.publish(Event("step", 0.0)) == 0.0

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        subscription = bus.subscribe(lambda e: seen.append(e.kind))
        bus.unsubscribe(subscription)
        bus.publish(Event("freeze", 0.0))
        assert seen == []

    def test_sequence_numbers_total_order_nested_publishes(self):
        bus = EventBus()
        order = []

        def outer(event):
            order.append(("outer", event.seq))
            if event.kind == "step":
                bus.publish(Event("gc", event.time))

        bus.subscribe(outer)
        bus.publish(Event("step", 0.0))
        seqs = [seq for _, seq in order]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)


class TestSimKernel:
    def test_runs_scheduled_callbacks_in_order(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(2.0, seen.append, "late")
        kernel.schedule(1.0, seen.append, "early")
        assert kernel.run() == 2
        assert seen == ["early", "late"]
        assert kernel.now == 2.0

    def test_until_keeps_future_events_queued(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(1.0, seen.append, "a")
        kernel.schedule(5.0, seen.append, "b")
        kernel.run(until=2.0)
        assert seen == ["a"]
        kernel.run()
        assert seen == ["a", "b"]

    def test_handlers_may_schedule_more_events(self):
        kernel = SimKernel()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                kernel.schedule(kernel.now + 1.0, chain, n + 1)

        kernel.schedule(0.0, chain, 0)
        kernel.run()
        assert seen == [0, 1, 2, 3]
        assert kernel.now == 3.0

    def test_cancellation_via_handle(self):
        kernel = SimKernel()
        seen = []
        handle = kernel.schedule(1.0, seen.append, "cancelled")
        kernel.schedule(2.0, seen.append, "kept")
        handle.cancel()
        kernel.run()
        assert seen == ["kept"]

    def test_rng_streams_are_memoized_per_component(self):
        kernel = SimKernel(seed=3)
        assert kernel.rng("router") is kernel.rng("router")
        assert kernel.rng("router") is not kernel.rng("jitter")

    def test_events_processed_counter(self):
        kernel = SimKernel()
        for t in range(5):
            kernel.schedule(float(t), lambda _: None)
        kernel.run()
        assert kernel.events_processed == 5
