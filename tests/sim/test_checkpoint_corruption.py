"""Corrupt checkpoints must fail loudly, named by the broken invariant.

Mirrors the oracle-test idiom (tests/check/test_oracle.py): plant one
specific corruption, assert the restore raises a
:class:`~repro.check.invariants.Violation` whose ``invariant`` names
exactly the law that caught it -- before a single pickle byte executes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import fastpath
from repro.check import check_checkpoint
from repro.check.invariants import Violation
from repro.sim import checkpoint


@pytest.fixture
def ckpt(tmp_path) -> Path:
    path = tmp_path / "barrier.ckpt"
    checkpoint.dump(path, {"clock": 12.5, "items": list(range(64))}, meta={"pos": 4})
    return path


def _header_and_payload(path: Path):
    raw = path.read_bytes()
    cut = raw.index(b"\n")
    return json.loads(raw[:cut]), raw[cut + 1 :]


def _rewrite(path: Path, header: dict, payload: bytes) -> None:
    path.write_bytes(
        json.dumps(header, sort_keys=True, separators=(",", ":")).encode() + b"\n" + payload
    )


class TestIntactCheckpoints:
    def test_roundtrip(self, ckpt):
        header = check_checkpoint(ckpt)
        assert header["magic"] == checkpoint.CHECKPOINT_MAGIC
        assert header["meta"] == {"pos": 4}
        loaded_header, state = checkpoint.load(ckpt)
        assert loaded_header["schema"] == checkpoint.SCHEMA_VERSION
        assert state == {"clock": 12.5, "items": list(range(64))}

    def test_read_header_leaves_payload_untouched(self, ckpt):
        header = checkpoint.read_header(ckpt)
        assert header["payload_bytes"] > 0

    def test_dump_is_atomic(self, ckpt, tmp_path):
        # No .tmp staging file survives a successful dump.
        assert list(tmp_path.glob("*.tmp")) == []


class TestCorruption:
    def test_flipped_payload_byte_is_a_digest_violation(self, ckpt):
        header, payload = _header_and_payload(ckpt)
        mutated = bytearray(payload)
        mutated[len(mutated) // 2] ^= 0xFF
        _rewrite(ckpt, header, bytes(mutated))
        with pytest.raises(Violation) as caught:
            check_checkpoint(ckpt)
        assert caught.value.invariant == "checkpoint-digest"

    def test_every_payload_position_is_covered(self, ckpt):
        # Flip one byte at several positions including both ends: SHA-256
        # has no blind spots, and neither may the checker.
        header, payload = _header_and_payload(ckpt)
        for position in (0, 1, len(payload) // 3, len(payload) - 1):
            mutated = bytearray(payload)
            mutated[position] ^= 0x01
            _rewrite(ckpt, header, bytes(mutated))
            with pytest.raises(Violation) as caught:
                check_checkpoint(ckpt)
            assert caught.value.invariant == "checkpoint-digest", position

    def test_bumped_schema_version_refused(self, ckpt):
        header, payload = _header_and_payload(ckpt)
        header["schema"] = checkpoint.SCHEMA_VERSION + 1
        _rewrite(ckpt, header, payload)
        with pytest.raises(Violation) as caught:
            checkpoint.load(ckpt)
        assert caught.value.invariant == "checkpoint-schema"

    def test_truncated_payload_refused(self, ckpt):
        header, payload = _header_and_payload(ckpt)
        _rewrite(ckpt, header, payload[: len(payload) // 2])
        with pytest.raises(Violation) as caught:
            check_checkpoint(ckpt)
        assert caught.value.invariant == "checkpoint-truncated"

    def test_wrong_magic_refused(self, ckpt):
        header, payload = _header_and_payload(ckpt)
        header["magic"] = "not-a-checkpoint"
        _rewrite(ckpt, header, payload)
        with pytest.raises(Violation) as caught:
            check_checkpoint(ckpt)
        assert caught.value.invariant == "checkpoint-magic"

    def test_garbage_file_refused(self, tmp_path):
        path = tmp_path / "garbage.ckpt"
        path.write_bytes(b"\x00\x01\x02 this is not a checkpoint")
        with pytest.raises(Violation) as caught:
            check_checkpoint(path)
        assert caught.value.invariant == "checkpoint-magic"

    def test_missing_file_refused(self, tmp_path):
        with pytest.raises(Violation) as caught:
            check_checkpoint(tmp_path / "never-written.ckpt")
        assert caught.value.invariant == "checkpoint-magic"

    def test_corruption_detected_before_any_pickle_executes(self, ckpt):
        # The digest check rejects the file outright; the payload is
        # never handed to pickle.loads, so a poisoned pickle cannot run.
        header, payload = _header_and_payload(ckpt)
        poisoned = b"cos\nsystem\n(S'true'\ntR."  # classic pickle RCE shape
        _rewrite(ckpt, header, poisoned + payload[len(poisoned):])
        with pytest.raises(Violation) as caught:
            checkpoint.load(ckpt)
        assert caught.value.invariant in ("checkpoint-digest", "checkpoint-truncated")


class TestEnvironmentGate:
    def test_fastpath_flavor_mismatch_refused(self, tmp_path):
        path = tmp_path / "flavored.ckpt"
        with fastpath.override(True):
            checkpoint.dump(path, {"x": 1})
        # check_checkpoint does not care about the environment...
        with fastpath.override(False):
            check_checkpoint(path)
            # ...but load refuses to restore across flavors.
            with pytest.raises(Violation) as caught:
                checkpoint.load(path)
            assert caught.value.invariant == "checkpoint-env"
        with fastpath.override(True):
            _, state = checkpoint.load(path)
            assert state == {"x": 1}


class TestSessionCheckpointCorruption:
    """The gate holds end to end: a session resume sees the violation."""

    def test_resume_from_corrupted_session_checkpoint(self, tmp_path):
        from repro.core import Desiccant
        from repro.trace.replay import ClusterReplayConfig, cluster_replay

        config = ClusterReplayConfig(
            nodes=2,
            shards=1,
            processes=False,
            epoch_seconds=2.0,
            scale_factor=2.0,
            warmup_scale_factor=2.0,
            warmup_seconds=4.0,
            duration_seconds=4.0,
            checkpoint_dir=tmp_path / "ckpt",
        )
        cluster_replay(Desiccant, config)
        target = tmp_path / "ckpt" / "measure-start.ckpt"
        header, payload = _header_and_payload(target)
        mutated = bytearray(payload)
        mutated[7] ^= 0x40
        _rewrite(target, header, bytes(mutated))
        from dataclasses import replace

        with pytest.raises(Violation) as caught:
            cluster_replay(Desiccant, replace(config, resume_from=target))
        assert caught.value.invariant == "checkpoint-digest"
