"""Indexed dispatch vs the linear reference bus.

The indexed :class:`EventBus` must be observationally identical to
:class:`LinearEventBus`: same handlers, same order, same summed costs --
under subscribes, unsubscribes, wildcard subscriptions, and re-entrant
publishes.  The replay benchmark's fast/base legs lean on exactly this.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.bus import EventBus, LinearEventBus
from repro.sim.events import Event

KINDS = ("step", "sample", "request-arrival", "gc", "reclaim-done")


def _mirror_buses():
    return LinearEventBus(), EventBus()


class TestDifferential:
    def test_random_schedule_matches_linear_bus(self):
        """Drive both buses through the same randomized subscribe /
        unsubscribe / publish schedule; delivery logs and publish sums
        must be identical."""
        rng = random.Random(1234)
        linear, indexed = _mirror_buses()
        logs = ([], [])
        subs = ([], [])  # parallel subscription handles

        def make_handler(log, tag):
            def handler(event):
                log.append((tag, event.kind, event.node, event.seq))
                return 0.25

            return handler

        tag = 0
        for _ in range(400):
            action = rng.random()
            if action < 0.30:
                kinds = None if rng.random() < 0.3 else tuple(
                    rng.sample(KINDS, rng.randint(1, 3))
                )
                node = None if rng.random() < 0.5 else rng.randrange(3)
                for i, bus in enumerate((linear, indexed)):
                    subs[i].append(
                        bus.subscribe(make_handler(logs[i], tag), kinds=kinds, node=node)
                    )
                tag += 1
            elif action < 0.45 and subs[0]:
                victim = rng.randrange(len(subs[0]))
                for i, bus in enumerate((linear, indexed)):
                    bus.unsubscribe(subs[i].pop(victim))
            else:
                kind = rng.choice(KINDS)
                node = rng.randrange(3)
                totals = [
                    bus.publish(Event(kind, 1.0, node, {}))
                    for bus in (linear, indexed)
                ]
                assert totals[0] == totals[1]
        assert logs[0] == logs[1]
        assert len(logs[0]) > 100  # the schedule actually exercised dispatch

    def test_reentrant_publish_matches_linear_bus(self):
        linear, indexed = _mirror_buses()
        logs = ([], [])
        for i, bus in enumerate((linear, indexed)):
            log = logs[i]

            def outer(event, bus=bus, log=log):
                log.append(("outer", event.kind, event.seq))
                if event.kind == "step":
                    bus.publish(Event("gc", event.time, event.node, {}))

            def inner(event, log=log):
                log.append(("inner", event.kind, event.seq))

            bus.subscribe(outer)
            bus.subscribe(inner, kinds=("gc",))
            bus.publish(Event("step", 0.0, 0, {}))
        assert logs[0] == logs[1]
        # run-to-completion: the nested gc is delivered after the step.
        assert [entry[1] for entry in logs[0]] == ["step", "gc", "gc"]


class TestCompaction:
    def test_unsubscribe_empties_buckets(self):
        bus = EventBus()
        sub = bus.subscribe(lambda event: None, kinds=("step",), node=1)
        assert bus.has_subscribers("step", 1)
        bus.unsubscribe(sub)
        assert not bus.has_subscribers("step", 1)
        assert bus._buckets == {}
        assert sub not in bus._subscriptions

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        sub = bus.subscribe(lambda event: None, kinds=("step",))
        bus.unsubscribe(sub)
        bus.unsubscribe(sub)  # second call is a no-op, not an error
        assert bus._buckets == {}

    def test_handler_unsubscribing_mid_dispatch(self):
        """A handler removing itself (or a later handler) during dispatch:
        both buses skip the dead handler via the ``active`` flag."""
        for factory in (LinearEventBus, EventBus):
            bus = factory()
            seen = []
            subs = {}

            def first(event):
                seen.append("first")
                bus.unsubscribe(subs["second"])

            def second(event):
                seen.append("second")

            subs["first"] = bus.subscribe(first, kinds=("step",))
            subs["second"] = bus.subscribe(second, kinds=("step",))
            bus.publish(Event("step", 0.0, 0, {}))
            bus.publish(Event("step", 0.0, 0, {}))
            assert seen == ["first", "first"], factory.__name__


class TestLazyPublish:
    @pytest.mark.parametrize("factory", (LinearEventBus, EventBus))
    def test_skipped_publish_still_burns_seq(self, factory):
        bus = factory()
        seen = []
        bus.subscribe(lambda event: seen.append(event.seq), kinds=("sample",))
        built = []

        def costly():
            built.append(True)
            return {"x": 1}

        bus.publish_lazy("step", 0.0, 0, costly)  # nobody listens
        bus.publish_lazy("sample", 1.0, 0, costly)
        assert built == [True]  # the unheard event was never built
        assert seen == [1]  # ...but it consumed seq 0
