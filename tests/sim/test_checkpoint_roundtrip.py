"""Checkpoint-equivalence battery: restore == never-stopped, byte for byte.

The contract under test (docs/CHECKPOINTS.md): a checkpoint captured at
any epoch barrier, restored into a fresh session, and run to the end
produces a merged canonical event trace whose SHA-256 equals the
uninterrupted twin's -- for every shard count, under both fast-path
flavors, and for an unchanged ``fork()``.  A changed-policy fork shares
the event prefix up to the fork barrier and is free to diverge after.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import fastpath
from repro.core import Desiccant, VanillaManager
from repro.faas.platform import PlatformConfig
from repro.mem.layout import MIB
from repro.sim import checkpoint
from repro.trace.replay import ClusterReplayConfig, cluster_replay

NODES = 4


def _run(
    factory=Desiccant,
    *,
    seed: int = 42,
    shards: int = 1,
    scale: float = 3.0,
    warmup: float = 4.0,
    duration: float = 8.0,
    capacity_mib: int = 768,
    checkpoint_dir=None,
    checkpoint_every=2,
    resume_from=None,
    fork=None,
    event_trace_path=None,
):
    """One tiny traced cluster replay on the in-process pool."""
    config = ClusterReplayConfig(
        nodes=NODES,
        shards=shards,
        processes=False,
        epoch_seconds=2.0,
        scale_factor=scale,
        warmup_scale_factor=scale,
        warmup_seconds=warmup,
        duration_seconds=duration,
        platform=PlatformConfig(capacity_bytes=capacity_mib * MIB),
        trace=True,
        trace_seed=seed,
        event_trace_path=event_trace_path,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every if checkpoint_dir else None,
        resume_from=resume_from,
        fork=fork,
    )
    return cluster_replay(factory, config)


# ----------------------------------------------------------- the property


class TestRoundtripProperty:
    """Random workload, random barrier: restore-and-finish is identical."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**16),
        scale=st.sampled_from([2.0, 3.0, 5.0]),
        barrier=st.floats(0.0, 1.0),
    )
    def test_restore_matches_uninterrupted_twin(self, shards, seed, scale, barrier):
        scratch = Path(tempfile.mkdtemp(prefix="repro-ckpt-prop-"))
        try:
            base = _run(seed=seed, shards=shards, scale=scale)
            ckpt_dir = scratch / "ckpt"
            captured = _run(
                seed=seed, shards=shards, scale=scale, checkpoint_dir=ckpt_dir
            )
            # Checkpointing itself must not perturb the timeline.
            assert captured.trace_sha256 == base.trace_sha256
            assert captured.checkpoints
            # Restore from a barrier chosen by the example and run to the
            # end: the merged trace must be byte-identical to the twin
            # that never stopped.
            chosen = captured.checkpoints[
                min(int(barrier * len(captured.checkpoints)),
                    len(captured.checkpoints) - 1)
            ]
            resumed = _run(
                seed=seed,
                shards=shards,
                scale=scale,
                checkpoint_dir=ckpt_dir,
                resume_from=chosen,
            )
            assert resumed.trace_sha256 == base.trace_sha256, chosen.name
            assert resumed.trace_events == base.trace_events
        finally:
            shutil.rmtree(scratch, ignore_errors=True)


class TestFastpathFlavors:
    """The identity holds under both REPRO_FASTPATH flavors -- and each
    flavor's checkpoints restore in that same flavor."""

    @pytest.mark.parametrize("fast", [True, False])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_restore_identity_per_flavor(self, tmp_path, shards, fast):
        with fastpath.override(fast):
            base = _run(shards=shards)
            ckpt_dir = tmp_path / "ckpt"
            captured = _run(shards=shards, checkpoint_dir=ckpt_dir)
            assert captured.trace_sha256 == base.trace_sha256
            resumed = _run(
                shards=shards,
                checkpoint_dir=ckpt_dir,
                resume_from=ckpt_dir / "measure-start.ckpt",
            )
            assert resumed.trace_sha256 == base.trace_sha256

    def test_flavors_agree_with_each_other(self, tmp_path):
        # The two flavors are the same simulation: their from-scratch
        # traces match, so the per-flavor restores above all equal one
        # another transitively.
        with fastpath.override(True):
            fast = _run(shards=2)
        with fastpath.override(False):
            slow = _run(shards=2)
        assert fast.trace_sha256 == slow.trace_sha256


# ------------------------------------------------------------------ forks


def _events_before(path: Path, clock: float):
    lines = [line for line in path.read_text().splitlines() if line]
    return [line for line in lines if json.loads(line)["t"] <= clock]


class TestForkDeterminism:
    # Tight enough capacity (and enough load) that vanilla and desiccant
    # behave observably differently: desiccant's reclaim avoids evictions
    # vanilla has to take.
    PRESSURE = dict(capacity_mib=384, scale=6.0, warmup=6.0, duration=12.0)

    def _captured(self, tmp_path, **kw):
        ckpt_dir = tmp_path / "ckpt"
        base = _run(
            checkpoint_dir=ckpt_dir,
            event_trace_path=tmp_path / "base.jsonl",
            **self.PRESSURE,
            **kw,
        )
        return ckpt_dir, base

    def test_unchanged_fork_replays_bit_for_bit(self, tmp_path):
        ckpt_dir, base = self._captured(tmp_path, shards=2)
        forked = _run(
            shards=2,
            checkpoint_dir=ckpt_dir,
            resume_from=ckpt_dir / "measure-start.ckpt",
            fork={},
            **self.PRESSURE,
        )
        assert forked.trace_sha256 == base.trace_sha256

    def test_changed_policy_diverges_only_after_the_barrier(self, tmp_path):
        ckpt_dir, base = self._captured(tmp_path, shards=2)
        mid = sorted(ckpt_dir.glob("measured-*.ckpt"))[0]
        barrier_clock = checkpoint.read_header(mid)["meta"]["clock"]
        forked = _run(
            shards=2,
            checkpoint_dir=ckpt_dir,
            resume_from=mid,
            fork={"manager_factory": VanillaManager},
            event_trace_path=tmp_path / "fork.jsonl",
            **self.PRESSURE,
        )
        assert forked.stats.policy == "vanilla"
        # Diverges: the two policies behave differently under pressure.
        assert forked.trace_sha256 != base.trace_sha256
        # ...but only after the fork barrier: the event prefix up to the
        # barrier clock is the captured history, shared byte for byte.
        prefix_base = _events_before(tmp_path / "base.jsonl", barrier_clock)
        prefix_fork = _events_before(tmp_path / "fork.jsonl", barrier_clock)
        assert prefix_base  # the barrier is mid-measurement, not at t=0
        assert prefix_fork == prefix_base

    def test_reseed_fork_keeps_the_prefix(self, tmp_path):
        ckpt_dir, base = self._captured(tmp_path, shards=2)
        mid = sorted(ckpt_dir.glob("measured-*.ckpt"))[0]
        barrier_clock = checkpoint.read_header(mid)["meta"]["clock"]
        forked = _run(
            shards=2,
            checkpoint_dir=ckpt_dir,
            resume_from=mid,
            fork={"reseed": "what-if-7"},
            event_trace_path=tmp_path / "fork.jsonl",
            **self.PRESSURE,
        )
        prefix_base = _events_before(tmp_path / "base.jsonl", barrier_clock)
        prefix_fork = _events_before(tmp_path / "fork.jsonl", barrier_clock)
        assert prefix_fork == prefix_base

    def test_fork_requires_resume(self, tmp_path):
        with pytest.raises(ValueError, match="resume_from"):
            _run(fork={"reseed": "x"})

    def test_resume_refuses_other_shard_count(self, tmp_path):
        # A checkpoint stores one host blob per shard: it resumes only at
        # the shard count that captured it.
        ckpt_dir, _ = self._captured(tmp_path, shards=2)
        with pytest.raises(checkpoint.CheckpointError) as caught:
            _run(
                shards=1,
                checkpoint_dir=ckpt_dir,
                resume_from=ckpt_dir / "measure-start.ckpt",
                **self.PRESSURE,
            )
        assert caught.value.invariant == "checkpoint-config"

    def test_resume_refuses_different_arrivals(self, tmp_path):
        ckpt_dir, _ = self._captured(tmp_path, shards=2)
        with pytest.raises(checkpoint.CheckpointError) as caught:
            _run(
                shards=2,
                seed=43,  # regenerates a different arrival log
                checkpoint_dir=ckpt_dir,
                resume_from=ckpt_dir / "measure-start.ckpt",
                **self.PRESSURE,
            )
        assert caught.value.invariant == "checkpoint-arrivals"
