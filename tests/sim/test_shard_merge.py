"""Tests for the generic sharding layer (repro.sim.shard).

Covers the epoch grid, the canonical ``(t, node, seq)`` trace merge and
its partition-invariance property, the worker-pool protocol (process and
inline twins), and the :meth:`~repro.sim.rng.RngStream.split` derivation
the shard workers rely on for per-component streams.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.sim.rng import RngStream
from repro.sim.shard import (
    InlineShardPool,
    ShardPool,
    ShardWorkerError,
    epoch_horizons,
    make_pool,
    merge_trace_files,
    merge_trace_lines,
    run_window,
    sha256_lines,
)

# ------------------------------------------------------------------ epochs


class TestEpochHorizons:
    def test_grid_covers_the_window(self):
        assert epoch_horizons(0.0, 20.0, 5.0) == [5.0, 10.0, 15.0, 20.0]

    def test_partial_tail_gets_its_own_epoch(self):
        assert epoch_horizons(0.0, 12.0, 5.0) == [5.0, 10.0, 15.0]

    def test_offset_start(self):
        assert epoch_horizons(60.0, 70.0, 5.0) == [65.0, 70.0]

    def test_empty_window_still_yields_one_epoch(self):
        assert epoch_horizons(10.0, 10.0, 5.0) == [15.0]
        assert epoch_horizons(10.0, 3.0, 5.0) == [15.0]

    def test_index_computed_not_accumulated(self):
        # 0.1 is not exactly representable: summing it drifts, indexing
        # does not.  Every horizon must equal start + (k+1) * epoch.
        horizons = epoch_horizons(0.0, 10.0, 0.1)
        assert all(h == (k + 1) * 0.1 for k, h in enumerate(horizons))

    def test_nonpositive_epoch_rejected(self):
        with pytest.raises(ValueError):
            epoch_horizons(0.0, 10.0, 0.0)


# ------------------------------------------------------------------- merge


def _record(t, node, seq, detail="x"):
    return json.dumps(
        {"t": t, "node": node, "seq": seq, "detail": detail}, sort_keys=True
    )


def _serial_stream():
    """A synthetic global trace with heavy same-time collisions."""
    lines = []
    seqs = {}
    for step in range(40):
        t = float(step // 4)  # four events share every timestamp
        for node in range(5):
            if (step + node) % 3 == 0:
                continue
            seq = seqs.get(node, 0)
            seqs[node] = seq + 1
            lines.append(_record(t, node, seq, detail=f"s{step}"))
    # Global serial order: time-major, node then seq breaking ties.
    lines.sort(key=lambda line: (
        json.loads(line)["t"], json.loads(line)["node"], json.loads(line)["seq"]
    ))
    return lines


class TestMerge:
    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_merge_is_partition_invariant(self, shards):
        """Split per node across K shard streams, merge: byte-identical
        to the serial stream for every shard count."""
        serial = _serial_stream()
        streams = [[] for _ in range(shards)]
        for line in serial:
            streams[json.loads(line)["node"] % shards].append(line)
        merged = list(merge_trace_lines(streams))
        assert merged == serial
        assert sha256_lines(merged) == sha256_lines(serial)

    def test_ties_break_on_node_then_seq(self):
        a = [_record(1.0, 2, 0), _record(1.0, 2, 1)]
        b = [_record(1.0, 0, 0), _record(1.0, 3, 0)]
        merged = [json.loads(line) for line in merge_trace_lines([a, b])]
        assert [(r["node"], r["seq"]) for r in merged] == [
            (0, 0), (2, 0), (2, 1), (3, 0)
        ]

    def test_merge_of_merged_streams_is_stable(self):
        serial = _serial_stream()
        halves = [serial[: len(serial) // 2], serial[len(serial) // 2 :]]
        # A previously merged stream is itself sorted, so re-merging is a
        # no-op -- the property merge_trace_files relies on.
        assert list(merge_trace_lines(halves)) == serial

    def test_sha256_lines_matches_manual_digest(self):
        lines = ["alpha", "beta"]
        count, digest = sha256_lines(lines)
        assert count == 2
        assert digest == hashlib.sha256(b"alpha\nbeta\n").hexdigest()

    def test_merge_trace_files_roundtrip(self, tmp_path):
        serial = _serial_stream()
        paths = []
        for shard in range(3):
            path = tmp_path / f"node{shard}.jsonl"
            path.write_text(
                "".join(
                    line + "\n"
                    for line in serial
                    if json.loads(line)["node"] % 3 == shard
                )
            )
            paths.append(path)
        out = tmp_path / "merged.jsonl"
        events, digest = merge_trace_files(paths, out)
        assert events == len(serial)
        # The digest covers exactly the bytes written.
        assert digest == hashlib.sha256(out.read_bytes()).hexdigest()
        assert out.read_text() == "".join(line + "\n" for line in serial)
        # Digest-only mode agrees without writing anything.
        assert merge_trace_files(paths) == (events, digest)


# -------------------------------------------------------------------- pool


class EchoHost:
    """Minimal shard-host protocol implementation for pool tests."""

    def __init__(self, spec):
        self.shard, self.fail_on_advance = spec
        self.items = []
        self.marks = []
        self.clock = 0.0

    def begin_epoch(self, payload):
        self.items.extend(payload)

    def advance(self, until):
        if self.fail_on_advance:
            raise RuntimeError("shard-host boom")
        if until is not None:
            self.clock = until

    def epoch_report(self, horizon):
        return {"shard": self.shard, "clock": self.clock, "items": list(self.items)}

    def mark(self, name):
        self.marks.append(name)

    def finalize(self):
        return {"shard": self.shard, "items": list(self.items), "marks": self.marks}


class WindowHost:
    """Shard host exercising the optional window hooks.

    Spec is ``(shard, fail_at)``: advancing to horizon ``fail_at``
    raises, which is how the mid-window death tests plant a failure on a
    specific epoch of a multi-epoch grant.
    """

    def __init__(self, spec):
        self.shard, self.fail_at = spec
        self.preambles = []
        self.begins = []
        self.flushes = []
        self.clock = 0.0

    def window_begin(self, preamble):
        self.preambles.append(preamble)

    def begin_epoch(self, payload):
        self.begins.append(list(payload))

    def advance(self, until):
        if self.fail_at is not None and until == self.fail_at:
            raise RuntimeError(f"window-host boom at {until}")
        if until is not None:
            self.clock = until

    def epoch_end(self, horizon):
        self.flushes.append(horizon)

    def epoch_report(self, horizon):
        return {
            "shard": self.shard,
            "clock": self.clock,
            "preambles": list(self.preambles),
            "flushes": list(self.flushes),
        }

    def mark(self, name):
        pass

    def finalize(self):
        return {"shard": self.shard}


@pytest.mark.parametrize("processes", [False, True])
class TestPoolProtocol:
    def test_epoch_mark_finish_roundtrip(self, processes):
        pool = make_pool(EchoHost, [(0, False), (1, False)], processes=processes)
        assert isinstance(pool, ShardPool if processes else InlineShardPool)
        assert len(pool) == 2
        try:
            reports = pool.epoch(5.0, [["a"], ["b", "c"]])
            assert [r["shard"] for r in reports] == [0, 1]
            assert [r["clock"] for r in reports] == [5.0, 5.0]
            assert reports[1]["items"] == ["b", "c"]
            pool.mark("reset")
            results = pool.finish()
            assert [r["items"] for r in results] == [["a"], ["b", "c"]]
            assert all(r["marks"] == ["reset"] for r in results)
        finally:
            pool.close()

    def test_payload_count_must_match_shards(self, processes):
        pool = make_pool(EchoHost, [(0, False)], processes=processes)
        try:
            with pytest.raises(ValueError, match="one payload batch per shard"):
                pool.epoch(1.0, [[], []])
        finally:
            pool.close()

    def test_empty_specs_rejected(self, processes):
        with pytest.raises(ValueError, match="at least one shard spec"):
            make_pool(EchoHost, [], processes=processes)

    def test_window_runs_all_epochs_in_one_barrier(self, processes):
        pool = make_pool(EchoHost, [(0, False), (1, False)], processes=processes)
        try:
            before = pool.round_trips
            reports = pool.window(
                [5.0, 10.0, 15.0],
                [[["a"], [], ["b"]], [["c"], ["d"], []]],
            )
            # One barrier exchange for the whole window, on both pools.
            assert pool.round_trips == before + 1
            assert [r["clock"] for r in reports] == [15.0, 15.0]
            assert reports[0]["items"] == ["a", "b"]
            assert reports[1]["items"] == ["c", "d"]
        finally:
            pool.close()

    def test_window_payloads_must_match_epochs(self, processes):
        pool = make_pool(EchoHost, [(0, False)], processes=processes)
        try:
            with pytest.raises(
                (ValueError, ShardWorkerError), match="per window epoch"
            ):
                pool.window([1.0, 2.0], [[["a"]]])
        finally:
            pool.close()

    def test_preamble_reaches_hosts_that_accept_it(self, processes):
        pool = make_pool(WindowHost, [(0, None)], processes=processes)
        try:
            reports = pool.window(
                [1.0, 2.0], [[[], []]], preambles=[{"fn": "body"}]
            )
            assert reports[0]["preambles"] == [{"fn": "body"}]
            # epoch_end ran per epoch, not once per window.
            assert reports[0]["flushes"] == [1.0, 2.0]
        finally:
            pool.close()

    def test_preamble_is_harmless_without_window_begin(self, processes):
        # EchoHost implements neither window_begin nor epoch_end: the
        # hooks are optional, a preamble to such a host is ignored.
        pool = make_pool(EchoHost, [(0, False)], processes=processes)
        try:
            reports = pool.window([1.0], [[["x"]]], preambles=[{"fn": 1}])
            assert reports[0]["items"] == ["x"]
        finally:
            pool.close()


class TestRunWindow:
    def test_rejects_empty_window(self):
        with pytest.raises(ValueError, match="at least one epoch"):
            run_window(EchoHost((0, False)), [], [])

    def test_skips_begin_epoch_for_empty_payloads(self):
        host = WindowHost((0, None))
        run_window(host, [1.0, 2.0], [[], ["a"]])
        assert host.begins == [["a"]]


class TestWorkerErrors:
    @pytest.mark.parametrize("processes", [False, True])
    def test_worker_exception_carries_traceback(self, processes):
        pool = make_pool(EchoHost, [(0, False), (1, True)], processes=processes)
        try:
            with pytest.raises(ShardWorkerError) as caught:
                pool.epoch(1.0, [[], []])
            assert caught.value.shard == 1
            assert "shard-host boom" in caught.value.worker_traceback
        finally:
            pool.close()

    @pytest.mark.parametrize("processes", [False, True])
    def test_mid_window_death_names_the_failing_epoch(self, processes):
        """A worker dying on epoch 2 of a 4-epoch window grant must
        surface *that epoch's* traceback and position, not the window."""
        pool = make_pool(WindowHost, [(0, 30.0)], processes=processes)
        try:
            with pytest.raises(ShardWorkerError) as caught:
                pool.window(
                    [10.0, 20.0, 30.0, 40.0], [[["a"], ["b"], ["c"], ["d"]]]
                )
            error = caught.value
            assert error.shard == 0
            assert error.epoch_index == 2
            assert error.horizon == 30.0
            assert "window-host boom at 30.0" in error.worker_traceback
            assert "window epoch 2" in str(error)
            assert "horizon 30.0" in str(error)
        finally:
            pool.close()

    def test_error_before_any_window_has_no_epoch_context(self):
        pool = ShardPool(EchoHost, [(0, True)])
        try:
            with pytest.raises(ShardWorkerError) as caught:
                pool.epoch(1.0, [[]])
            # A one-epoch window still pinpoints epoch 0.
            assert caught.value.epoch_index == 0
        finally:
            pool.close()

    def test_close_is_idempotent(self):
        pool = ShardPool(EchoHost, [(0, False)])
        pool.close()
        pool.close()


class TestPipeAccounting:
    def test_process_pool_counts_framed_bytes(self):
        pool = ShardPool(EchoHost, [(0, False)])
        try:
            pool.window([1.0, 2.0], [[["a"], ["b"]]])
            assert pool.pipe_bytes_sent > 0
            assert pool.pipe_bytes_received > 0
            assert pool.pipe_bytes == (
                pool.pipe_bytes_sent + pool.pipe_bytes_received
            )
        finally:
            pool.close()

    def test_batching_ships_fewer_bytes_than_per_epoch_grants(self):
        """The tentpole in miniature: the same 8 epochs cost less wire
        when granted as one window than as 8 singletons."""
        horizons = [float(k + 1) for k in range(8)]
        payloads = [[f"item{k}"] for k in range(8)]

        batched = ShardPool(EchoHost, [(0, False)])
        try:
            batched.window(horizons, [payloads])
            batched_bytes = batched.pipe_bytes
            batched_trips = batched.round_trips
        finally:
            batched.close()

        unbatched = ShardPool(EchoHost, [(0, False)])
        try:
            for horizon, payload in zip(horizons, payloads):
                unbatched.epoch(horizon, [payload])
            unbatched_bytes = unbatched.pipe_bytes
            unbatched_trips = unbatched.round_trips
        finally:
            unbatched.close()

        assert batched_trips * 8 == unbatched_trips
        assert batched_bytes < unbatched_bytes

    def test_inline_pool_reports_zero_pipe_bytes(self):
        pool = InlineShardPool(EchoHost, [(0, False)])
        pool.window([1.0], [[["a"]]])
        assert pool.pipe_bytes == 0
        assert pool.round_trips == 1


# --------------------------------------------------------------- rng split


class TestRngSplit:
    def test_split_depends_only_on_names(self):
        a = RngStream(7, "cluster").split("node3")
        b = RngStream(7, "cluster").split("node3")
        assert [a.random() for _ in range(8)] == [b.random() for _ in range(8)]

    def test_split_consumes_no_parent_draws(self):
        plain = RngStream(7, "cluster")
        splitting = RngStream(7, "cluster")
        splitting.split("node0")
        splitting.split("node1")
        assert [plain.random() for _ in range(8)] == [
            splitting.random() for _ in range(8)
        ]

    def test_split_is_order_and_sibling_independent(self):
        """The draws of child X never depend on which siblings exist or
        when they were split -- the property shard workers rely on."""
        parent = RngStream(7, "cluster")
        early = parent.split("node2")
        early_draws = [early.random() for _ in range(8)]

        other = RngStream(7, "cluster")
        for label in ("node9", "node4", "node0"):
            drawn = other.split(label)
            drawn.random()
        late = other.split("node2")
        assert [late.random() for _ in range(8)] == early_draws

    def test_distinct_labels_diverge(self):
        parent = RngStream(7, "cluster")
        assert parent.split("node0").random() != parent.split("node1").random()

    def test_nested_split_names_compose(self):
        child = RngStream(7, "cluster").split("node3")
        assert child.name == "cluster/node3"
        grand = child.split("gc")
        assert grand.name == "cluster/node3/gc"
        direct = RngStream(7, "cluster/node3/gc")
        assert [grand.random() for _ in range(4)] == [
            direct.random() for _ in range(4)
        ]
