"""Property tests for the density-adaptive epoch horizons.

The batched shard protocol depends on one invariant above all others:
``adaptive_horizons`` is a *pure, index-computed* function of the full
submission log, so the coordinator and every worker -- at any shard
count -- derive bit-identical horizons without exchanging them.  These
properties pin that down, plus the conservative-simulation guarantees
(strictly increasing, every arrival strictly covered) that the epoch
merge's determinism rests on.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.shard import adaptive_horizons, arrival_density, epoch_horizons

# Arrival times in a bounded, float-friendly window.  allow_nan/inf off:
# the submission log is generated, never adversarial.
times_strategy = st.lists(
    st.floats(
        min_value=0.0,
        max_value=600.0,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=0,
    max_size=200,
)

epoch_strategy = st.floats(min_value=0.25, max_value=60.0, allow_nan=False)


class TestArrivalDensity:
    @given(times=times_strategy, cell=epoch_strategy)
    @settings(max_examples=100, deadline=None)
    def test_counts_are_order_insensitive_and_complete(self, times, cell):
        start, end = 0.0, 600.0
        counts = arrival_density(times, start, end, cell)
        assert counts == arrival_density(sorted(times), start, end, cell)
        assert counts == arrival_density(list(reversed(times)), start, end, cell)
        in_window = [t for t in times if start <= t < start + len(counts) * cell]
        assert sum(counts) == len(in_window)

    @given(times=times_strategy, cell=epoch_strategy)
    @settings(max_examples=100, deadline=None)
    def test_grid_matches_epoch_horizons(self, times, cell):
        counts = arrival_density(times, 0.0, 600.0, cell)
        assert len(counts) == len(epoch_horizons(0.0, 600.0, cell))

    def test_rejects_nonpositive_cell(self):
        with pytest.raises(ValueError):
            arrival_density([], 0.0, 1.0, 0.0)


class TestAdaptiveHorizons:
    @given(times=times_strategy, epoch=epoch_strategy)
    @settings(max_examples=200, deadline=None)
    def test_strictly_increasing_and_covering(self, times, epoch):
        start, end = 0.0, 600.0
        horizons = adaptive_horizons(times, start, end, epoch)
        assert horizons, "at least one epoch"
        assert all(b > a for a, b in zip(horizons, horizons[1:]))
        assert horizons[0] > start
        assert horizons[-1] >= end
        # Every arrival lands strictly inside some epoch -- including an
        # arrival exactly at the phase end (the tail guarantee).
        if times:
            assert horizons[-1] > max(times)

    @given(times=times_strategy, epoch=epoch_strategy)
    @settings(max_examples=200, deadline=None)
    def test_pure_function_bit_identity(self, times, epoch):
        """The shard-count-independence property.

        Workers see the same submission log in a different container
        (each shard re-derives horizons from the identical spec), so the
        function must be bit-identical across calls and across input
        orderings -- `==` on floats, not approx.
        """
        start, end = 0.0, 600.0
        a = adaptive_horizons(times, start, end, epoch)
        b = adaptive_horizons(list(times), start, end, epoch)
        c = adaptive_horizons(sorted(times), start, end, epoch)
        d = adaptive_horizons(list(reversed(times)), start, end, epoch)
        assert a == b == c == d
        # Bit-exact, not just ==: horizons cross process boundaries and
        # are compared for window membership with equality.
        assert [math.copysign(1, h) for h in a] == [
            math.copysign(1, h) for h in c
        ]

    @given(times=times_strategy, epoch=epoch_strategy)
    @settings(max_examples=100, deadline=None)
    def test_horizons_subset_of_index_lattice(self, times, epoch):
        """Every horizon is start + (k * epoch) / split for grid index k.

        Index computation is what makes bit-identity hold on any host:
        no accumulated float sums appear in the output.
        """
        start, end = 0.0, 600.0
        horizons = adaptive_horizons(times, start, end, epoch, max_split=4)
        for h in horizons:
            # h = start + k*epoch + (i*epoch)/den for grid index k, split
            # den in 1..4, sub-index i in 1..den (i == den covers the
            # merged/plain cells, where h = start + (k+1)*epoch).
            base = int((h - start) / epoch)
            matched = False
            for k in range(max(0, base - 1), base + 2):
                # Plain / merged / tail horizons: start + k*epoch.
                if h == start + k * epoch:
                    matched = True
                # Split horizons: start + k*epoch + (i*epoch)/den.
                for den in (1, 2, 3, 4):
                    for i in range(1, den + 1):
                        if h == start + k * epoch + (i * epoch) / den:
                            matched = True
            assert matched, f"horizon {h!r} off the index lattice"

    @given(epoch=epoch_strategy)
    @settings(max_examples=50, deadline=None)
    def test_empty_log_collapses_to_merged_idle_epochs(self, epoch):
        start, end = 0.0, 600.0
        horizons = adaptive_horizons([], start, end, epoch, max_merge=16)
        grid = epoch_horizons(start, end, epoch)
        assert len(horizons) <= len(grid)
        assert len(horizons) >= math.ceil(len(grid) / 16)
        assert horizons[-1] == grid[-1]

    def test_dense_cell_subdivides_with_density(self):
        # Splits scale with how far past the threshold the cell is:
        # min(max_split, count // dense_events + 1).
        mild = [1.0 + i * 0.01 for i in range(100)]  # 100 >= 64 -> 2 splits
        horizons = adaptive_horizons(
            mild, 0.0, 20.0, 5.0, dense_events=64, max_split=4
        )
        assert horizons[:2] == [2.5, 5.0]
        hot = [1.0 + i * 0.001 for i in range(300)]  # 300//64+1 = 5 -> cap 4
        horizons = adaptive_horizons(
            hot, 0.0, 20.0, 5.0, dense_events=64, max_split=4
        )
        assert horizons[:4] == [1.25, 2.5, 3.75, 5.0]

    def test_sparse_run_merges_up_to_max_merge(self):
        horizons = adaptive_horizons(
            [], 0.0, 100.0, 5.0, max_merge=4
        )  # 20 empty cells, merged 4 at a time
        assert horizons == [20.0, 40.0, 60.0, 80.0, 100.0]

    def test_degenerate_window(self):
        horizons = adaptive_horizons([], 0.0, 0.0, 5.0)
        assert horizons == [5.0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            adaptive_horizons([], 0.0, 1.0, 0.0)
        with pytest.raises(ValueError):
            adaptive_horizons([], 0.0, 1.0, 1.0, dense_events=0)
        with pytest.raises(ValueError):
            adaptive_horizons([], 0.0, 1.0, 1.0, max_merge=0)
        with pytest.raises(ValueError):
            adaptive_horizons([], 0.0, 1.0, 1.0, max_split=0)
