"""Pickle-safety regressions for the kernel pieces checkpoints carry.

Each class here pins one ``__getstate__``/``__reduce__`` contract that a
checkpoint restore depends on: counters resume at their exact positions,
derived caches are dropped and rebuilt rather than shipped stale, and
streamed outputs rewrite to byte-identical files.  These are the latent
gaps that byte-identity tests would only catch indirectly (and late) --
pin them at the unit level so a regression names the broken component.
"""

from __future__ import annotations

import pickle

import pytest

from repro import fastpath
from repro.sim import checkpoint
from repro.sim.bus import EventBus, LinearEventBus
from repro.sim.events import Event
from repro.sim.queue import EventQueue
from repro.sim.rng import RngStream
from repro.trace.archive import ArchiveWriter
from repro.faas.platform import VersionedList


def _copy(obj):
    return pickle.loads(pickle.dumps(obj, protocol=checkpoint.PICKLE_PROTOCOL))


# ------------------------------------------------------------- RngStream


class TestRngStream:
    def test_pickle_preserves_identity_and_position(self):
        stream = RngStream(1234, "kernel/arrivals")
        drawn = [stream.random() for _ in range(10)]
        clone = _copy(stream)
        assert clone.master_seed == 1234
        assert clone.name == "kernel/arrivals"
        # Both continue the sequence from draw 10, in lockstep.
        assert [clone.random() for _ in range(5)] == [
            stream.random() for _ in range(5)
        ]
        assert drawn  # the prefix really was consumed before pickling

    def test_restart_still_works_after_restore(self):
        stream = RngStream(7, "svc")
        first = [stream.random() for _ in range(4)]
        clone = _copy(stream)
        clone.restart()
        assert [clone.random() for _ in range(4)] == first

    def test_split_is_stable_across_restore(self):
        # split() depends only on (master_seed, name/label); a restored
        # stream must hand out the same children it would have live.
        stream = RngStream(99, "root")
        live_child = [stream.split("what-if").random() for _ in range(3)]
        clone = _copy(stream)
        restored_child = [clone.split("what-if").random() for _ in range(3)]
        assert restored_child == live_child


# ------------------------------------------------------------ EventQueue


_FIRED = []


def _record(payload):
    _FIRED.append(payload)


class TestEventQueue:
    def test_pickle_preserves_pop_order_and_seq(self):
        queue = EventQueue()
        queue.push(2.0, _record, "late")
        queue.push(1.0, _record, "early")
        queue.push(1.0, _record, "early-but-second")
        clone = _copy(queue)
        order = [clone.pop().payload for _ in range(3)]
        assert order == ["early", "early-but-second", "late"]
        # The insertion counter resumes where it left off: a post-restore
        # push at an existing timestamp still sorts after history.
        assert clone._seq == queue._seq == 3
        event = clone.push(1.0, _record, "post-restore")
        assert event.seq == 3

    def test_cancellation_survives_pickling(self):
        queue = EventQueue()
        keep = queue.push(1.0, _record, "keep")
        queue.push(1.5, _record, "drop").cancel()
        clone = _copy(queue)
        assert len(clone) == 1
        assert clone.pop().payload == "keep"
        assert clone.pop() is None
        assert keep.payload == "keep"

    def test_next_time_after_restore(self):
        queue = EventQueue()
        queue.push(3.25, _record)
        assert _copy(queue).next_time() == 3.25


# -------------------------------------------------------------- EventBus


_CALLS = []


def _observer_a(event: Event) -> float:
    _CALLS.append(("a", event.kind, event.seq))
    return 1.0


def _observer_b(event: Event) -> float:
    _CALLS.append(("b", event.kind, event.seq))
    return 0.25


class TestEventBusState:
    def _warmed_bus(self) -> EventBus:
        bus = EventBus()
        bus.subscribe(_observer_a, kinds=["tick"])
        bus.subscribe(_observer_b)  # wildcard, subscribed second
        bus.publish(Event("tick", 0.0, 0, {}))
        return bus

    def test_dispatch_cache_is_dropped_not_shipped(self):
        bus = self._warmed_bus()
        assert bus._dispatch_cache  # warmed by the publish above
        assert bus.__getstate__()["_dispatch_cache"] == {}
        clone = _copy(bus)
        assert clone._dispatch_cache == {}

    def test_restored_bus_dispatches_in_subscription_order(self):
        clone = _copy(self._warmed_bus())
        del _CALLS[:]
        total = clone.publish(Event("tick", 1.0, 0, {}))
        assert total == pytest.approx(1.25)
        assert [name for name, _, _ in _CALLS] == ["a", "b"]
        # The cache rebuilt from the buckets on first use.
        assert clone._dispatch_cache

    def test_seq_and_order_counters_resume(self):
        bus = self._warmed_bus()
        clone = _copy(bus)
        assert clone._seq == bus._seq == 1
        assert clone._order == bus._order == 2
        event = Event("tick", 2.0, 0, {})
        clone.publish(event)
        assert event.seq == 1

    def test_indexed_and_linear_bus_agree_after_restore(self):
        del _CALLS[:]
        linear = LinearEventBus()
        linear.subscribe(_observer_a, kinds=["tick"])
        linear.subscribe(_observer_b)
        linear.publish(Event("tick", 0.0, 0, {}))
        reference = list(_CALLS)

        del _CALLS[:]
        clone = _copy(self._warmed_bus())
        del _CALLS[:]
        clone._seq = 0  # align numbering with the fresh linear bus
        clone.publish(Event("tick", 0.0, 0, {}))
        assert _CALLS == reference


# --------------------------------------------------------- VersionedList


class TestVersionedList:
    def test_reduce_preserves_counters_and_contents(self):
        frozen = VersionedList()
        frozen.extend(["i1", "i2"])
        frozen.version = 7
        frozen.adds = 5
        frozen.state_version = 11
        clone = _copy(frozen)
        assert list(clone) == ["i1", "i2"]
        assert isinstance(clone, VersionedList)
        assert (clone.version, clone.adds, clone.state_version) == (7, 5, 11)


# ------------------------------------------------------ global counters


class TestCounterCapture:
    def test_capture_is_a_nondestructive_peek(self):
        import repro.faas.platform as platform_mod

        values = checkpoint.capture_counters()
        peeked = values["faas.platform._request_ids"]
        # The capture re-armed the counter at the peeked value: the next
        # live draw is exactly what it would have been without it.
        assert next(platform_mod._request_ids) == peeked
        checkpoint.restore_counters(values)

    def test_restore_rearms_every_site(self):
        import repro.faas.instance as instance_mod

        values = checkpoint.capture_counters()
        before = values["faas.instance._instance_ids"]
        next(instance_mod._instance_ids)  # perturb
        checkpoint.restore_counters(values)
        assert next(instance_mod._instance_ids) == before
        checkpoint.restore_counters(values)

    def test_snapshot_world_roundtrip_carries_counters(self):
        import repro.mem.vmm as vmm_mod

        values = checkpoint.capture_counters()
        blob = checkpoint.snapshot_world({"marker": 42})
        next(vmm_mod._mapping_ids)  # drift past the snapshot point
        world = checkpoint.restore_world(blob)
        assert world == {"marker": 42}
        assert next(vmm_mod._mapping_ids) == values["mem.vmm._mapping_ids"]
        checkpoint.restore_counters(values)


# -------------------------------------------------------- archive writer


class TestArchiveWriterState:
    LINES = [
        (0.5, 0, '{"seq":0,"kind":"x"}'),
        (1.5, 0, '{"seq":1,"kind":"y"}'),
        (2.5, 0, '{"seq":2,"kind":"z"}'),  # new bucket: rolls the segment
        (3.0, 0, '{"seq":3,"kind":"w"}'),
    ]

    def _fill(self, writer: ArchiveWriter, lines) -> None:
        for t, node, line in lines:
            writer.add(t, node, line)

    def test_open_segment_rewrite_is_byte_identical(self, tmp_path):
        straight = ArchiveWriter(tmp_path / "straight", bucket_seconds=2.0)
        self._fill(straight, self.LINES)
        straight.close(manifest=False)

        interrupted = ArchiveWriter(tmp_path / "interrupted", bucket_seconds=2.0)
        self._fill(interrupted, self.LINES[:3])  # mid-open-segment
        blob = pickle.dumps(interrupted, protocol=checkpoint.PICKLE_PROTOCOL)
        restored = pickle.loads(blob)  # rewrites the open segment on unpickle
        self._fill(restored, self.LINES[3:])
        restored.close(manifest=False)

        names = sorted(
            p.name for p in (tmp_path / "straight").glob("seg-*")
        )
        assert names  # the roll produced at least two segments
        assert names == sorted(
            p.name for p in (tmp_path / "interrupted").glob("seg-*")
        )
        for name in names:
            a = (tmp_path / "straight" / name).read_bytes()
            b = (tmp_path / "interrupted" / name).read_bytes()
            assert a == b, name

    def test_restored_writer_input_digest_is_marked_invalid(self, tmp_path):
        writer = ArchiveWriter(tmp_path / "arch", bucket_seconds=2.0)
        self._fill(writer, self.LINES[:2])
        assert writer._input_sha_valid
        restored = pickle.loads(pickle.dumps(writer))
        assert not restored._input_sha_valid
        restored.close(manifest=False)


# --------------------------------------------------- environment capture


class TestEnvironmentFingerprint:
    def test_fingerprint_tracks_fastpath(self):
        with fastpath.override(True):
            fast = checkpoint.environment_fingerprint()
        with fastpath.override(False):
            slow = checkpoint.environment_fingerprint()
        assert fast["fastpath"] is True
        assert slow["fastpath"] is False
