"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import _trace_path_for, build_parser, main


def test_list_prints_all_functions(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "file-hash" in out
    assert "alexa (8)" in out
    assert out.count("\n") >= 21  # header + rule + 20 functions


def test_characterize_single_function(capsys):
    assert main(["characterize", "clock", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "clock" in out
    assert "max_ratio" in out


def test_characterize_desiccant_policy(capsys):
    assert (
        main(
            [
                "characterize",
                "time",
                "--policy",
                "desiccant",
                "--iterations",
                "5",
            ]
        )
        == 0
    )
    assert "desiccant" in capsys.readouterr().out


def test_characterize_unknown_function_fails_cleanly(capsys):
    assert main(["characterize", "not-a-function", "--iterations", "2"]) == 2
    assert "error" in capsys.readouterr().err


def test_overhead_command(capsys):
    assert main(["overhead", "time", "--warm", "4", "--probe", "2"]) == 0
    out = capsys.readouterr().out
    assert "time (desiccant)" in out
    assert "%" in out


def test_replay_single_policy(capsys):
    assert (
        main(
            [
                "replay",
                "--policy",
                "vanilla",
                "--scale-factor",
                "3",
                "--warmup",
                "5",
                "--duration",
                "10",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "vanilla" in out
    assert "cold/req" in out


def test_replay_writes_event_trace(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert (
        main(
            [
                "replay",
                "--policy",
                "vanilla",
                "--scale-factor",
                "3",
                "--warmup",
                "5",
                "--duration",
                "10",
                "--event-trace",
                str(path),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "wrote" in captured.err
    lines = path.read_text().splitlines()
    assert lines
    records = [json.loads(line) for line in lines]
    assert all({"seq", "t", "node", "kind"} <= set(r) for r in records)
    assert any(r["kind"] == "request-done" for r in records)


def test_trace_path_per_policy():
    assert _trace_path_for("out.jsonl", "desiccant", multiple=False) == "out.jsonl"
    assert (
        _trace_path_for("out.jsonl", "desiccant", multiple=True)
        == "out.desiccant.jsonl"
    )
    assert _trace_path_for("trace", "eager", multiple=True) == "trace.eager.jsonl"


def test_parser_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["characterize", "fft", "--policy", "magic"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
