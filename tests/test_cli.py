"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import _archive_dir_for, _trace_path_for, build_parser, main


def test_list_prints_all_functions(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "file-hash" in out
    assert "alexa (8)" in out
    assert out.count("\n") >= 21  # header + rule + 20 functions


def test_characterize_single_function(capsys):
    assert main(["characterize", "clock", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "clock" in out
    assert "max_ratio" in out


def test_characterize_desiccant_policy(capsys):
    assert (
        main(
            [
                "characterize",
                "time",
                "--policy",
                "desiccant",
                "--iterations",
                "5",
            ]
        )
        == 0
    )
    assert "desiccant" in capsys.readouterr().out


def test_characterize_unknown_function_fails_cleanly(capsys):
    assert main(["characterize", "not-a-function", "--iterations", "2"]) == 2
    assert "error" in capsys.readouterr().err


def test_overhead_command(capsys):
    assert main(["overhead", "time", "--warm", "4", "--probe", "2"]) == 0
    out = capsys.readouterr().out
    assert "time (desiccant)" in out
    assert "%" in out


def test_replay_single_policy(capsys):
    assert (
        main(
            [
                "replay",
                "--policy",
                "vanilla",
                "--scale-factor",
                "3",
                "--warmup",
                "5",
                "--duration",
                "10",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "vanilla" in out
    assert "cold/req" in out


def test_replay_writes_event_trace(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert (
        main(
            [
                "replay",
                "--policy",
                "vanilla",
                "--scale-factor",
                "3",
                "--warmup",
                "5",
                "--duration",
                "10",
                "--event-trace",
                str(path),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert "wrote" in captured.err
    lines = path.read_text().splitlines()
    assert lines
    records = [json.loads(line) for line in lines]
    assert all({"seq", "t", "node", "kind"} <= set(r) for r in records)
    assert any(r["kind"] == "request-done" for r in records)


def test_trace_path_per_policy():
    assert _trace_path_for("out.jsonl", "desiccant", multiple=False) == "out.jsonl"
    assert (
        _trace_path_for("out.jsonl", "desiccant", multiple=True)
        == "out.desiccant.jsonl"
    )
    assert _trace_path_for("trace", "eager", multiple=True) == "trace.eager.jsonl"


def test_archive_dir_per_policy():
    assert _archive_dir_for("arc", "desiccant", multiple=False) == "arc"
    assert _archive_dir_for("arc", "desiccant", multiple=True) == "arc.desiccant"


REPLAY_ARGS = [
    "replay",
    "--policy",
    "vanilla",
    "--scale-factor",
    "3",
    "--warmup",
    "5",
    "--duration",
    "10",
]


class TestTraceCommands:
    @pytest.fixture()
    def traced(self, tmp_path, capsys):
        """One replay leg producing both a flat trace and an archive."""
        flat = tmp_path / "trace.jsonl"
        arc = tmp_path / "arc"
        assert (
            main(
                REPLAY_ARGS
                + ["--event-trace", str(flat), "--archive", str(arc)]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "archived" in err and "composed sha256" in err
        return flat, arc

    def test_replay_archive_matches_flat_trace(self, traced, capsys):
        flat, arc = traced
        assert main(["trace", "verify", str(arc), "--against", str(flat)]) == 0
        assert "verified" in capsys.readouterr().out

    def test_pack_reproduces_replay_archive(self, traced, tmp_path, capsys):
        flat, arc = traced
        packed = tmp_path / "packed"
        assert main(["trace", "pack", str(flat), str(packed)]) == 0
        capsys.readouterr()
        originals = sorted(p.name for p in arc.iterdir())
        assert sorted(p.name for p in packed.iterdir()) == originals
        for name in originals:
            assert (packed / name).read_bytes() == (arc / name).read_bytes()

    def test_ls_renders_segments(self, traced, capsys):
        _, arc = traced
        assert main(["trace", "ls", str(arc)]) == 0
        captured = capsys.readouterr()
        assert "seg-b" in captured.out
        assert "events" in captured.out
        assert "segments" in captured.err

    def test_cat_windows_the_stream(self, traced, capsys):
        flat, arc = traced
        assert (
            main(
                ["trace", "cat", str(arc), "--t-start", "5", "--t-end", "9"]
            )
            == 0
        )
        lines = capsys.readouterr().out.splitlines()
        assert lines
        expected = [
            line
            for line in flat.read_text().splitlines()
            if 5 <= json.loads(line)["t"] < 9
        ]
        assert lines == expected

    def test_verify_fails_on_corruption(self, traced, capsys):
        _, arc = traced
        victim = sorted(arc.glob("seg-*"))[0]
        blob = bytearray(victim.read_bytes())
        blob[16] ^= 0x01  # inside the payload deflate stream
        victim.write_bytes(bytes(blob))
        assert main(["trace", "verify", str(arc)]) == 1
        assert "PROBLEM" in capsys.readouterr().err


def test_parser_rejects_unknown_policy():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["characterize", "fft", "--policy", "magic"])


def test_command_required():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
