"""Byte-identity gates for the compiled trace-line encoders.

The compiled fast path (``repro.trace.encode``) must be byte-identical
to the generic reference twin -- which is itself pinned to
``json.dumps(record, separators=(",", ":"))``.  The property tests here
drive all three encoder tiers (type-specialized fused, polymorphic twin,
key-set-miss fallback) against an independently built ``json.dumps``
reference over arbitrary scalar payloads; the mutation test proves the
differential digest gate actually fires when a float formatter is
deliberately broken.
"""

from __future__ import annotations

import hashlib
import json
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.bus import EventBus
from repro.sim.trace import EventTraceSink
from repro.trace import encode
from repro.trace.encode import (
    ID_KEYS,
    SCALARS,
    EncoderTable,
    compile_shape,
    encode_line_generic,
    format_float,
)


def fresh_maps():
    return {key: {} for key in ID_KEYS}


def make_normalize(maps):
    """The sink's id-map hook, detached from a sink."""

    def normalize(key, value):
        mapping = maps.get(key)
        if mapping is None:
            return value
        return mapping.setdefault(value, len(mapping) + 1)

    return normalize


def reference_line(seq, t, node, kind, data, maps):
    """Independent reimplementation of the byte contract: plain
    ``json.dumps`` over the record dict, ids normalized, floats rounded,
    non-scalars dropped."""
    record = {"seq": seq, "t": t, "node": node, "kind": kind}
    for key in sorted(data):
        value = data[key]
        if isinstance(value, SCALARS):
            if isinstance(value, float):
                value = round(value, 9)
            if key in maps:
                value = maps[key].setdefault(value, len(maps[key]) + 1)
            record[key] = value
    return json.dumps(record, sort_keys=False, separators=(",", ":"))


# ------------------------------------------------------------ float contract


class TestFormatFloat:
    @pytest.mark.parametrize(
        "value",
        [
            0.0,
            -0.0,
            1.0,
            0.1 + 0.2,
            1e-10,
            5e-324,
            1.7976931348623157e308,
            -123456.789012345,
            float("nan"),
            float("inf"),
            float("-inf"),
        ],
    )
    def test_matches_json_dumps(self, value):
        assert format_float(value) == json.dumps(value)


# ----------------------------------------------------- property: byte parity

_scalar_values = st.one_of(
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=True, allow_infinity=True),
    st.booleans(),
    st.none(),
    st.text(max_size=16),
    st.builds(object),  # non-scalar: must be dropped by every encoder
)

_keys = st.one_of(
    st.sampled_from(ID_KEYS),
    st.text(min_size=1, max_size=10),
)

_payloads = st.dictionaries(_keys, _scalar_values, max_size=5)

_kinds = st.text(min_size=1, max_size=12)

_times = st.floats(allow_nan=True, allow_infinity=True)


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    kind=_kinds,
    payload=_payloads,
    seq=st.integers(min_value=0, max_value=10**9),
    t=_times,
    node=st.integers(min_value=0, max_value=64),
)
def test_every_encoder_tier_matches_json_dumps(kind, payload, seq, t, node):
    if not (t != t or t in (math.inf, -math.inf)):
        t = round(t, 9)  # the sink rounds before either encoder runs

    expected = reference_line(seq, t, node, kind, payload, fresh_maps())
    generic = encode_line_generic(
        seq, t, node, kind, payload, make_normalize(fresh_maps())
    )
    fused = compile_shape(kind, tuple(payload), payload)(
        seq, t, node, payload, fresh_maps()
    )
    poly = compile_shape(kind, tuple(payload))(
        seq, t, node, payload, fresh_maps()
    )
    table = EncoderTable()
    via_kind = table.kind_encoder(kind, payload)(
        seq, t, node, payload, fresh_maps()
    )
    assert generic == expected
    assert fused == expected
    assert poly == expected
    assert via_kind == expected


@settings(
    max_examples=100,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(first=_payloads, second=_payloads, t=st.floats(0, 1e6))
def test_kind_encoder_fallback_keeps_bytes_on_shape_change(first, second, t):
    """A kind re-emitted with a different key-set routes through the
    fallback dispatch -- and still byte-matches the reference."""
    t = round(t, 9)
    table = EncoderTable()
    encoder = table.kind_encoder("mutating", first)
    maps = fresh_maps()
    ref_maps = fresh_maps()
    for seq, payload in enumerate((first, second, first, second)):
        got = encoder(seq, t, seq % 4, payload, maps)
        want = reference_line(seq, t, seq % 4, "mutating", payload, ref_maps)
        assert got == want


# --------------------------------------------------------- id normalization


class TestIdNormalization:
    def test_dense_first_appearance_matches_generic(self):
        events = [
            ("a", {"request_id": 900, "instance_id": 17}),
            ("a", {"request_id": 901, "instance_id": 17}),
            ("a", {"request_id": 900, "instance_id": 18}),
            ("b", {"request_id": 902.5, "instance_id": 17}),  # float id
            ("b", {"request_id": 902.5000000001, "instance_id": 17}),
        ]
        table, fast_maps = EncoderTable(), fresh_maps()
        gen_maps = fresh_maps()
        normalize = make_normalize(gen_maps)
        for seq, (kind, data) in enumerate(events):
            enc = table.by_kind.get(kind) or table.kind_encoder(kind, data)
            fast = enc(seq, 1.5, 0, data, fast_maps)
            slow = encode_line_generic(seq, 1.5, 0, kind, data, normalize)
            assert fast == slow
        assert fast_maps == gen_maps
        # floats are rounded before keying the map, so the two nearby
        # request ids above collapsed to one dense index
        assert list(fast_maps["request_id"]) == [900, 901, 902.5]

    def test_indexes_start_at_one(self):
        table = EncoderTable()
        maps = fresh_maps()
        enc = table.kind_encoder("k", {"request_id": 5})
        line = enc(0, 0.0, 0, {"request_id": 5}, maps)
        assert '"request_id":1' in line


# ----------------------------------------------- subclasses + escape cache


class TestOddScalars:
    def test_scalar_subclasses_match_generic(self):
        class MyInt(int):
            pass

        class MyFloat(float):
            pass

        class MyStr(str):
            pass

        data = {"a": MyInt(7), "b": MyFloat(0.1234567891234), "c": MyStr("x")}
        fast = compile_shape("sub", tuple(data), data)(
            3, 1.25, 2, data, fresh_maps()
        )
        slow = encode_line_generic(
            3, 1.25, 2, "sub", data, make_normalize(fresh_maps())
        )
        assert fast == slow

    def test_escape_cache_overflow_stays_correct(self):
        """>1024 distinct strings exceed the per-encoder cache cap; bytes
        must not change when the cache stops filling."""
        table = EncoderTable()
        enc = table.kind_encoder("s", {"function": "seed"})
        maps = fresh_maps()
        normalize = make_normalize(fresh_maps())
        for i in range(1100):
            value = f"fn-{i}-é"
            data = {"function": value}
            assert enc(i, 0.5, 0, data, maps) == encode_line_generic(
                i, 0.5, 0, "s", data, normalize
            )


# ------------------------------------------------------------ mutation gate


def _stream_digest(lines):
    return hashlib.sha256(("\n".join(lines) + "\n").encode("utf-8")).hexdigest()


def _run_both_legs():
    """Encode the same small corpus with both encoders; return digests."""
    events = [
        ("thaw", {"instance_id": 7 + i % 3, "thaw_seconds": 0.001234567891 * (i + 1)})
        for i in range(64)
    ]
    table, fast_maps = EncoderTable(), fresh_maps()
    normalize = make_normalize(fresh_maps())
    fast_lines, slow_lines = [], []
    for seq, (kind, data) in enumerate(events):
        t = round(0.123456789123 * (seq + 1), 9)
        enc = table.by_kind.get(kind) or table.kind_encoder(kind, data)
        fast_lines.append(enc(seq, t, 0, data, fast_maps))
        slow_lines.append(encode_line_generic(seq, t, 0, kind, data, normalize))
    return _stream_digest(fast_lines), _stream_digest(slow_lines)


class TestMutationGate:
    def test_healthy_encoders_share_a_digest(self):
        fast, slow = _run_both_legs()
        assert fast == slow

    def test_broken_float_formatter_is_caught(self, monkeypatch):
        """Deliberately mutate the compiled float formatting (3 digits
        instead of 9): the differential digest gate must fire."""
        real = encode.compile_shape

        def broken_compile(kind, keys, sample=None, fallback=None):
            inner = real(kind, keys, sample, fallback)

            def wrap(seq, t, node, data, id_maps):
                return inner(seq, round(t, 3), node, data, id_maps)

            return wrap

        monkeypatch.setattr(encode, "compile_shape", broken_compile)
        fast, slow = _run_both_legs()
        assert fast != slow


# ------------------------------------------------------- sink-level parity

_KINDS = ("freeze", "thaw", "request-arrival")


def _publish_corpus(bus):
    from repro.sim.events import Event

    for i in range(300):
        t = 0.0012345 * (i + 1)
        if i % 3 == 0:
            bus.publish(Event("freeze", t, i % 4, {"instance_id": 30 + i % 7}))
        elif i % 3 == 1:
            bus.publish(
                Event(
                    "thaw",
                    t,
                    i % 4,
                    {"instance_id": 30 + i % 7, "thaw_seconds": t / 2},
                )
            )
        else:
            bus.publish(
                Event(
                    "request-arrival",
                    t,
                    i % 4,
                    {"request_id": 9000 + i, "function": f"fn{i % 5}"},
                )
            )


class TestSinkParity:
    def test_fast_and_generic_sinks_emit_identical_bytes(self):
        bus = EventBus()
        fast = EventTraceSink(bus, kinds=_KINDS)
        slow = EventTraceSink(bus, kinds=_KINDS, encoder="generic")
        _publish_corpus(bus)
        fast.detach()
        slow.detach()
        assert fast.count == slow.count == 300
        assert fast.to_jsonl() == slow.to_jsonl()

    def test_digest_only_sink_matches_stored_stream(self):
        bus = EventBus()
        stored = EventTraceSink(bus, kinds=_KINDS)
        digest = EventTraceSink(bus, kinds=_KINDS, store=False, digest_only=True)
        _publish_corpus(bus)
        stored.detach()
        digest.detach()
        assert digest.lines == []
        expected = hashlib.sha256(
            stored.to_jsonl().encode("utf-8")
        ).hexdigest()
        assert digest.sha256 == expected

    def test_streamed_file_matches_stored_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        sink = EventTraceSink(bus, kinds=_KINDS, path=path)
        _publish_corpus(bus)
        sink.detach()
        assert path.read_text(encoding="utf-8") == sink.to_jsonl()
