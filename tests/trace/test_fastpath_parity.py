"""End-to-end fast-path parity: byte-identical event traces.

The replay benchmark's claim is that the fast paths (indexed bus
dispatch, cohort heap model, incremental platform aggregates, policy
heaps) change *nothing* observable: a full platform replay streams the
exact same event trace with them on and off.  This is the committed,
always-on version of that check at small scale; ``repro bench --suite
replay`` enforces it at Azure scale via trace digests.
"""

from __future__ import annotations

import hashlib

import pytest

from repro import fastpath
from repro.core import Desiccant, VanillaManager
from repro.faas.platform import PlatformConfig
from repro.mem.layout import MIB
from repro.trace.generator import TraceGenerator
from repro.trace.replay import ReplayConfig, replay


def _trace_digest(factory, path, fast):
    with fastpath.override(fast):
        config = ReplayConfig(
            scale_factor=2.0,
            warmup_seconds=5.0,
            warmup_scale_factor=2.0,
            duration_seconds=10.0,
            platform=PlatformConfig(capacity_bytes=512 * MIB),
            event_trace_path=str(path),
        )
        result = replay(factory, config, TraceGenerator(seed=42))
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    return digest, len(result.trace)


@pytest.mark.parametrize(
    "factory", (VanillaManager, Desiccant), ids=("vanilla", "desiccant")
)
def test_replay_trace_is_identical_with_fastpath_on_and_off(factory, tmp_path):
    fast_digest, fast_events = _trace_digest(factory, tmp_path / "fast.jsonl", True)
    base_digest, base_events = _trace_digest(factory, tmp_path / "base.jsonl", False)
    assert fast_events == base_events > 0
    assert fast_digest == base_digest
