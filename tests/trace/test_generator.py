"""Unit tests for the synthetic Azure-style trace generator."""

import pytest

from repro.trace.generator import FunctionArrivalSpec, TraceGenerator
from repro.workloads.registry import all_definitions, get_definition


@pytest.fixture
def generator():
    return TraceGenerator(seed=42)


def test_covers_all_twenty_functions(generator):
    assert len(generator.specs) == 20
    names = {s.definition.name for s in generator.specs}
    assert names == {d.name for d in all_definitions()}


def test_spec_validation():
    d = get_definition("fft")
    with pytest.raises(ValueError):
        FunctionArrivalSpec(d, "weird", 1.0)
    with pytest.raises(ValueError):
        FunctionArrivalSpec(d, "poisson", 0.0)


def test_arrivals_sorted_and_within_horizon(generator):
    events = generator.arrivals(60.0, scale_factor=5.0)
    times = [t for t, _ in events]
    assert times == sorted(times)
    assert all(0 <= t < 60.0 for t in times)
    assert len(events) > 20


def test_deterministic_for_same_seed():
    a = TraceGenerator(seed=7).arrivals(60.0, 5.0)
    b = TraceGenerator(seed=7).arrivals(60.0, 5.0)
    assert [(t, d.name) for t, d in a] == [(t, d.name) for t, d in b]


def test_different_seeds_differ():
    a = TraceGenerator(seed=7).arrivals(60.0, 5.0)
    b = TraceGenerator(seed=8).arrivals(60.0, 5.0)
    assert [(t, d.name) for t, d in a] != [(t, d.name) for t, d in b]


def test_scale_factor_scales_load(generator):
    low = len(generator.arrivals(120.0, scale_factor=1.0))
    high = len(generator.arrivals(120.0, scale_factor=10.0))
    assert high > 4 * low


def test_popularity_is_heavy_tailed(generator):
    from collections import Counter

    counts = Counter(d.name for _, d in generator.arrivals(600.0, 5.0))
    ordered = sorted(counts.values(), reverse=True)
    # The hottest function fires far more often than the coldest.
    assert ordered[0] > 5 * max(1, ordered[-1])


def test_invalid_parameters_rejected(generator):
    with pytest.raises(ValueError):
        generator.arrivals(0.0, 1.0)
    with pytest.raises(ValueError):
        generator.arrivals(60.0, 0.0)


def test_patterns_assigned_across_functions(generator):
    patterns = {s.pattern for s in generator.specs}
    assert patterns == {"poisson", "periodic", "bursty"}
