"""Edge-case tests for the Azure trace loader and replay plumbing:
empty traces, single-invocation functions, out-of-order timestamps, and
zero-duration invocations."""

from __future__ import annotations

import zlib

import pytest

from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.trace.azure_loader import (
    AzureFunctionRow,
    arrivals_from_counts,
    build_replay_arrivals,
    hash_stable,
    load_average_durations,
    load_invocation_counts,
    select_by_duration,
)
from repro.trace.stats import ReplayStats, percentile
from repro.workloads.registry import all_definitions, get_definition


def write_counts_csv(path, rows, minutes=5):
    header = ["HashOwner", "HashApp", "HashFunction", "Trigger"] + [
        str(i + 1) for i in range(minutes)
    ]
    lines = [",".join(header)]
    for owner, app, function, trigger, counts in rows:
        lines.append(",".join([owner, app, function, trigger, *counts]))
    path.write_text("\n".join(lines) + "\n")
    return path


def write_durations_csv(path, entries):
    lines = ["HashOwner,HashApp,HashFunction,Average"]
    for owner, app, function, average in entries:
        lines.append(f"{owner},{app},{function},{average}")
    path.write_text("\n".join(lines) + "\n")
    return path


def make_row(counts, name="f1") -> AzureFunctionRow:
    return AzureFunctionRow(
        owner="o", app="a", function=name, trigger="http",
        per_minute=tuple(counts),
    )


class TestEmptyTrace:
    def test_header_only_counts_csv(self, tmp_path):
        path = write_counts_csv(tmp_path / "counts.csv", [])
        assert load_invocation_counts(path) == []

    def test_header_only_durations_csv(self, tmp_path):
        path = write_durations_csv(tmp_path / "durations.csv", [])
        assert load_average_durations(path) == {}

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError, match="expected Azure"):
            load_invocation_counts(path)
        with pytest.raises(ValueError, match="expected Azure"):
            load_average_durations(path)

    def test_empty_cells_count_as_zero(self, tmp_path):
        path = write_counts_csv(
            tmp_path / "counts.csv", [("o", "a", "f", "http", ["", "3", "", "", ""])]
        )
        (row,) = load_invocation_counts(path)
        assert row.per_minute == (0, 3, 0, 0, 0)
        assert row.total_invocations == 3

    def test_selection_fails_loudly_on_empty_trace(self):
        with pytest.raises(ValueError, match="usable trace functions"):
            select_by_duration([], {})

    def test_all_zero_row_yields_no_arrivals(self):
        assert arrivals_from_counts(make_row([0] * 5), 300.0) == []


class TestSingleInvocationFunction:
    def test_one_arrival_inside_its_minute(self):
        row = make_row([0, 0, 1, 0, 0])
        (t,) = arrivals_from_counts(row, 300.0, scale_factor=1.0, seed=7)
        assert 120.0 <= t < 180.0

    def test_arrivals_are_deterministic_per_seed(self):
        row = make_row([0, 0, 1, 0, 0])
        assert arrivals_from_counts(row, 300.0, seed=7) == arrivals_from_counts(
            row, 300.0, seed=7
        )

    def test_scale_factor_compresses_time(self):
        row = make_row([0, 0, 1, 0, 0])
        (slow,) = arrivals_from_counts(row, 300.0, scale_factor=1.0, seed=7)
        (fast,) = arrivals_from_counts(row, 300.0, scale_factor=10.0, seed=7)
        assert fast == pytest.approx(slow / 10.0)

    def test_below_min_invocations_is_filtered(self):
        sparse = make_row([0, 0, 1, 0, 0], name="sparse")
        durations = {sparse.key: 100.0}
        with pytest.raises(ValueError, match="usable trace functions"):
            select_by_duration([sparse], durations, definitions=[all_definitions()[0]])
        # min_invocations=1 admits it.
        selection = select_by_duration(
            [sparse], durations,
            definitions=[all_definitions()[0]], min_invocations=1,
        )
        assert selection == {all_definitions()[0].name: sparse}

    def test_horizon_drops_late_arrivals(self):
        row = make_row([0, 0, 0, 0, 1])
        assert arrivals_from_counts(row, 60.0) == []


class TestOutOfOrderTimestamps:
    def test_arrivals_are_sorted_within_a_row(self):
        row = make_row([3, 0, 2, 5, 1])
        times = arrivals_from_counts(row, 300.0, seed=3)
        assert times == sorted(times)
        assert len(times) == 11

    def test_merged_arrivals_interleave_sorted(self):
        first = all_definitions()[0]
        second = all_definitions()[1]
        selection = {
            first.name: make_row([0, 4, 0, 4, 0], name="early"),
            second.name: make_row([2, 0, 2, 0, 2], name="late"),
        }
        events = build_replay_arrivals(selection, 300.0, seed=5)
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert {d.name for _, d in events} == {first.name, second.name}

    def test_platform_accepts_unsorted_submissions(self):
        platform = FaasPlatform(config=PlatformConfig())
        definition = get_definition("clock")
        # Reversed arrival order: the kernel queue must re-serialize it.
        requests = [
            Request(arrival=t, definition=definition) for t in (3.0, 1.0, 2.0)
        ]
        platform.submit(requests)
        outcomes = platform.run()
        assert len(outcomes) == 3
        assert [o.request.arrival for o in outcomes] == [1.0, 2.0, 3.0]


class TestZeroDurationInvocations:
    def test_zero_average_parses_and_ranks_shortest(self, tmp_path):
        path = write_durations_csv(
            tmp_path / "durations.csv",
            [("o", "a", "zero", ""), ("o", "a", "slow", "2500.0")],
        )
        durations = load_average_durations(path)
        assert durations["o/a/zero"] == 0.0
        assert durations["o/a/slow"] == 2500.0

    def test_zero_duration_rows_still_selectable(self):
        rows = [
            make_row([10] * 5, name=f"f{i}")
            for i in range(len(all_definitions()) + 4)
        ]
        durations = {row.key: 0.0 for row in rows}
        selection = select_by_duration(rows, durations)
        # Every definition got a (zero-duration) trace function, each used once.
        assert len(selection) == len(all_definitions())
        keys = [row.key for row in selection.values()]
        assert len(set(keys)) == len(keys)

    def test_invalid_horizon_and_scale_rejected(self):
        row = make_row([1] * 5)
        with pytest.raises(ValueError):
            arrivals_from_counts(row, 0.0)
        with pytest.raises(ValueError):
            arrivals_from_counts(row, 60.0, scale_factor=0.0)


class TestStatsEdges:
    def test_percentile_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 2.0
        assert percentile(values, 100) == 4.0

    def test_stats_from_idle_platform(self):
        platform = FaasPlatform(config=PlatformConfig())
        stats = ReplayStats.from_platform(
            platform, [], duration_seconds=10.0, policy="vanilla", scale_factor=1.0
        )
        assert stats.completed == 0
        assert stats.cold_boot_rate == 0.0
        assert stats.throughput_rps == 0.0
        assert stats.p99_latency == 0.0


def test_hash_stable_is_crc32():
    assert hash_stable("o/a/f") == zlib.crc32(b"o/a/f")
    assert hash_stable("o/a/f") == hash_stable("o/a/f")
