"""Unit tests for percentile stats and the replay harness."""

import pytest

from repro.core import Desiccant, VanillaManager
from repro.faas.platform import PlatformConfig
from repro.mem.layout import GIB, MIB
from repro.trace.generator import TraceGenerator
from repro.trace.replay import ReplayConfig, replay
from repro.trace.stats import percentile
from repro.workloads.registry import get_definition


class TestPercentile:
    def test_simple_percentiles(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile(values, 0) == 1

    def test_unsorted_input(self):
        assert percentile([5, 1, 9, 3], 50) == 3

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)


class TestReplay:
    @pytest.fixture(scope="class")
    def small_replay(self):
        """A small but end-to-end replay, shared across assertions."""
        config = ReplayConfig(
            scale_factor=6.0,
            warmup_seconds=20.0,
            warmup_scale_factor=6.0,
            duration_seconds=40.0,
            platform=PlatformConfig(capacity_bytes=1 * GIB),
        )
        generator = TraceGenerator(seed=3)
        return replay(VanillaManager, config, generator)

    def test_replay_completes_requests(self, small_replay):
        assert small_replay.stats.completed > 10

    def test_stats_are_consistent(self, small_replay):
        stats = small_replay.stats
        assert stats.policy == "vanilla"
        assert 0 <= stats.cpu_utilization <= 1
        assert stats.p50_latency <= stats.p90_latency <= stats.p99_latency
        assert stats.throughput_rps == pytest.approx(
            stats.completed / stats.duration_seconds
        )

    def test_warmup_not_counted(self, small_replay):
        # All counted outcomes arrive in the measurement window.
        outcomes = small_replay.platform.outcomes
        assert all(o.request.arrival >= 20.0 for o in outcomes)

    def test_desiccant_replay_reclaims_under_pressure(self):
        config = ReplayConfig(
            scale_factor=6.0,
            warmup_seconds=20.0,
            warmup_scale_factor=6.0,
            duration_seconds=40.0,
            platform=PlatformConfig(capacity_bytes=640 * MIB),
        )
        from repro.core import ActivationController

        # A 640 MiB cache with 256 MiB launches hits eviction pressure well
        # below the paper's default 60% floor; configure the floor down as
        # an operator of such a small node would.
        result = replay(
            lambda: Desiccant(activation=ActivationController(floor=0.25, ceiling=0.3)),
            config,
            TraceGenerator(seed=3),
        )
        assert result.stats.policy == "desiccant"
        manager = result.platform.manager
        assert manager.total_released_bytes > 0
