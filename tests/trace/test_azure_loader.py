"""Unit tests for the Azure Functions dataset loader (synthetic fixtures)."""

import csv
import random

import pytest

from repro.trace.azure_loader import (
    MINUTES_PER_DAY,
    arrivals_from_counts,
    build_replay_arrivals,
    load_average_durations,
    load_invocation_counts,
    select_by_duration,
)
from repro.workloads.registry import all_definitions


def write_invocations_csv(path, rows):
    minute_cols = [str(m) for m in range(1, MINUTES_PER_DAY + 1)]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["HashOwner", "HashApp", "HashFunction", "Trigger"] + minute_cols
        )
        for owner, app, fn, trigger, counts in rows:
            padded = list(counts) + [0] * (MINUTES_PER_DAY - len(counts))
            writer.writerow([owner, app, fn, trigger] + padded)


def write_durations_csv(path, entries):
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["HashOwner", "HashApp", "HashFunction", "Average"])
        for owner, app, fn, avg in entries:
            writer.writerow([owner, app, fn, avg])


@pytest.fixture
def dataset(tmp_path):
    """A synthetic dataset with enough spread to match every definition."""
    rng = random.Random(3)
    rows = []
    durations = []
    for k in range(40):
        counts = [rng.randint(0, 3) for _ in range(200)]
        rows.append(("o", "a", f"f{k}", "http", counts))
        # Log-spaced 2ms..2000ms: short durations dominate, like the real
        # dataset.
        durations.append(("o", "a", f"f{k}", round(2 * (1000 ** (k / 39)), 2)))
    inv_path = tmp_path / "invocations.csv"
    dur_path = tmp_path / "durations.csv"
    write_invocations_csv(inv_path, rows)
    write_durations_csv(dur_path, durations)
    return inv_path, dur_path


class TestLoading:
    def test_loads_rows_and_counts(self, dataset):
        inv_path, _ = dataset
        rows = load_invocation_counts(inv_path)
        assert len(rows) == 40
        assert len(rows[0].per_minute) == MINUTES_PER_DAY
        assert rows[0].trigger == "http"
        assert rows[0].total_invocations > 0

    def test_loads_durations(self, dataset):
        _, dur_path = dataset
        durations = load_average_durations(dur_path)
        assert durations["o/a/f0"] == 2.0
        assert len(durations) == 40

    def test_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="expected Azure"):
            load_invocation_counts(bad)
        with pytest.raises(ValueError, match="expected Azure"):
            load_average_durations(bad)


class TestSelection:
    def test_selects_one_row_per_definition(self, dataset):
        inv_path, dur_path = dataset
        rows = load_invocation_counts(inv_path)
        durations = load_average_durations(dur_path)
        selection = select_by_duration(rows, durations)
        assert set(selection) == {d.name for d in all_definitions()}
        # Each trace function used at most once.
        keys = [row.key for row in selection.values()]
        assert len(keys) == len(set(keys))

    def test_matches_by_duration(self, dataset):
        inv_path, dur_path = dataset
        rows = load_invocation_counts(inv_path)
        durations = load_average_durations(dur_path)
        selection = select_by_duration(rows, durations)
        # The fastest definition maps to one of the shortest trace rows.
        fastest = min(all_definitions(), key=lambda d: d.total_exec_seconds)
        chosen_ms = durations[selection[fastest.name].key]
        assert chosen_ms <= 200

    def test_requires_enough_candidates(self, dataset):
        inv_path, dur_path = dataset
        rows = load_invocation_counts(inv_path)[:5]
        durations = load_average_durations(dur_path)
        with pytest.raises(ValueError, match="usable trace functions"):
            select_by_duration(rows, durations)


class TestArrivalExpansion:
    def test_counts_expand_to_that_many_arrivals(self, dataset):
        inv_path, _ = dataset
        row = load_invocation_counts(inv_path)[0]
        times = arrivals_from_counts(row, horizon_seconds=86400.0)
        assert len(times) == row.total_invocations
        assert times == sorted(times)

    def test_scale_factor_compresses_time(self, dataset):
        inv_path, _ = dataset
        row = load_invocation_counts(inv_path)[0]
        plain = arrivals_from_counts(row, 86400.0, scale_factor=1.0, seed=1)
        fast = arrivals_from_counts(row, 86400.0, scale_factor=10.0, seed=1)
        assert max(fast) < max(plain)
        assert fast == pytest.approx([t / 10.0 for t in plain])

    def test_horizon_truncates(self, dataset):
        inv_path, _ = dataset
        row = load_invocation_counts(inv_path)[0]
        times = arrivals_from_counts(row, horizon_seconds=60.0)
        assert all(t < 60.0 for t in times)

    def test_invalid_parameters_rejected(self, dataset):
        inv_path, _ = dataset
        row = load_invocation_counts(inv_path)[0]
        with pytest.raises(ValueError):
            arrivals_from_counts(row, 0.0)
        with pytest.raises(ValueError):
            arrivals_from_counts(row, 60.0, scale_factor=0.0)


def test_end_to_end_replay_arrivals(dataset):
    inv_path, dur_path = dataset
    rows = load_invocation_counts(inv_path)
    durations = load_average_durations(dur_path)
    selection = select_by_duration(rows, durations)
    events = build_replay_arrivals(selection, horizon_seconds=600.0, scale_factor=20.0)
    assert events, "arrivals expected inside the horizon"
    times = [t for t, _ in events]
    assert times == sorted(times)
    names = {d.name for _, d in events}
    assert names <= {d.name for d in all_definitions()}
