"""Tests for the segmented trace archive (repro.trace.archive).

The contract under test (docs/TRACE_ARCHIVE.md):

* **addressing** is a pure function of ``(t, node)`` -- no catalog;
* **determinism** -- segment bytes are a pure function of their payload
  (pinned gzip header), so archives are byte-identical across runs *and*
  across how producers were partitioned (shard counts 1/2/4/7);
* **composition** -- per-segment digests compose to the whole-run
  SHA-256: pack -> window-read -> concat reproduces the original JSONL
  byte for byte;
* **windowing** -- a ``[t_start, t_end) x nodes`` read touches only the
  segments the window addresses (asserted via the reader's I/O witness).
"""

from __future__ import annotations

import gzip
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (
    Violation,
    check_archive_writer,
    check_digest_composition,
    check_trace_archive,
)
from repro.sim.shard import merge_trace_lines, sha256_lines
from repro.trace.archive import (
    ARCHIVE_SCHEMA,
    ArchiveReader,
    ArchiveWriter,
    bucket_of,
    finalize_archive,
    gzip_member,
    open_deterministic_gzip,
    pack,
    parse_segment_name,
    segment_name,
)

# ------------------------------------------------------------- fixtures


def _record(t, node, seq):
    return json.dumps(
        {"seq": seq, "t": t, "node": node, "kind": "step"},
        sort_keys=False,
        separators=(",", ":"),
    )


def _canonical(events):
    """Canonical ``(t, node, seq)`` stream from (t, node) pairs: seq is
    dense per node, global order time-major."""
    per_node = {}
    keyed = []
    for t, node in sorted(events, key=lambda e: e[0]):
        seq = per_node.get(node, 0)
        per_node[node] = seq + 1
        keyed.append((t, node, seq))
    keyed.sort()
    return [_record(t, node, seq) for t, node, seq in keyed]


def _write_archive(root, lines, bucket_seconds=10.0):
    writer = ArchiveWriter(root, bucket_seconds=bucket_seconds)
    for line in lines:
        record = json.loads(line)
        writer.add(record["t"], record["node"], line)
    return writer.close(manifest=True)


EVENTS = [(float(step % 37) + 0.25 * (step % 4), step % 5) for step in range(400)]


@pytest.fixture(scope="module")
def stream():
    return _canonical(EVENTS)


# ------------------------------------------------------------ addressing


class TestAddressing:
    def test_bucket_of_is_floor_division(self):
        assert bucket_of(0.0, 10.0) == 0
        assert bucket_of(9.999, 10.0) == 0
        assert bucket_of(10.0, 10.0) == 1
        assert bucket_of(125.0, 60.0) == 2

    def test_bucket_of_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            bucket_of(1.0, 0.0)
        with pytest.raises(ValueError):
            bucket_of(-0.5, 10.0)

    def test_segment_name_roundtrip(self):
        name = segment_name(7, 3)
        assert name == "seg-b00000007-n003.jsonl.gz"
        assert parse_segment_name(name) == (7, 3, ".jsonl.gz")
        assert parse_segment_name("seg-b00000007-n003.csv.gz") == (
            7, 3, ".csv.gz",
        )

    def test_non_segment_names_rejected(self):
        for name in ("MANIFEST.json", "seg-b1-n1.jsonl.gz", "other.gz"):
            assert parse_segment_name(name) is None


# ---------------------------------------------------------- determinism


class TestGzipDeterminism:
    def test_member_header_is_pinned(self):
        # mtime=0, no filename, OS byte 0xff: the whole header is fixed.
        member = gzip_member(b"payload\n")
        assert member[:10] == b"\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\xff"
        assert gzip.decompress(member) == b"payload\n"

    def test_member_bytes_are_reproducible(self):
        data = b"x" * 10_000
        assert gzip_member(data) == gzip_member(data)

    def test_open_deterministic_gzip_writes_pinned_header(self, tmp_path):
        path = tmp_path / "out.gz"
        with open_deterministic_gzip(path, "wb") as handle:
            handle.write(b"hello\n")
        raw = path.read_bytes()
        assert raw[:10] == b"\x1f\x8b\x08\x00\x00\x00\x00\x00\x00\xff"
        with open_deterministic_gzip(path, "rt") as handle:
            assert handle.read() == "hello\n"

    def test_archives_identical_across_runs(self, tmp_path, stream):
        _write_archive(tmp_path / "a", stream)
        _write_archive(tmp_path / "b", stream)
        names = sorted(p.name for p in (tmp_path / "a").iterdir())
        assert names == sorted(p.name for p in (tmp_path / "b").iterdir())
        for name in names:
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes(), name

    @pytest.mark.parametrize("shards", [1, 2, 4, 7])
    def test_archives_identical_across_shard_counts(
        self, tmp_path, stream, shards
    ):
        """Satellite property: K writers over disjoint node partitions
        fill a shared root with byte-identical segments, and the
        finalized manifest matches the single-writer one."""
        reference = tmp_path / "serial"
        _write_archive(reference, stream)

        root = tmp_path / f"s{shards}"
        writers = [
            ArchiveWriter(root, bucket_seconds=10.0) for _ in range(shards)
        ]
        for line in stream:
            record = json.loads(line)
            writers[record["node"] % shards].add(
                record["t"], record["node"], line
            )
        for writer in writers:
            writer.close(manifest=False)
        finalize_archive(root)

        names = sorted(p.name for p in reference.iterdir())
        assert sorted(p.name for p in root.iterdir()) == names
        for name in names:
            assert (root / name).read_bytes() == (
                reference / name
            ).read_bytes(), name


# ---------------------------------------------------------- composition


class TestComposition:
    def test_composed_digest_equals_flat_digest(self, tmp_path, stream):
        summary = _write_archive(tmp_path, stream)
        events, flat_sha = sha256_lines(stream)
        assert summary["events"] == events
        assert summary["sha256"] == flat_sha
        reader = ArchiveReader(tmp_path)
        assert reader.compose() == (events, flat_sha)
        assert reader.verify(against_sha256=flat_sha) == []

    def test_full_window_read_reproduces_stream(self, tmp_path, stream):
        _write_archive(tmp_path, stream)
        assert list(ArchiveReader(tmp_path).iter_window()) == stream

    def test_pack_roundtrip(self, tmp_path, stream):
        flat = tmp_path / "flat.jsonl"
        flat.write_text("".join(line + "\n" for line in stream))
        events, sha = pack(flat, tmp_path / "arc", bucket_seconds=10.0)
        assert (events, sha) == sha256_lines(stream)
        assert list(ArchiveReader(tmp_path / "arc").iter_window()) == stream

    def test_pack_refuses_existing_archive(self, tmp_path, stream):
        flat = tmp_path / "flat.jsonl"
        flat.write_text("".join(line + "\n" for line in stream[:5]))
        pack(flat, tmp_path / "arc")
        with pytest.raises(FileExistsError):
            pack(flat, tmp_path / "arc")

    def test_empty_archive(self, tmp_path):
        summary = _write_archive(tmp_path, [])
        assert summary["events"] == 0
        reader = ArchiveReader(tmp_path)
        assert reader.segments() == []
        events, sha = reader.compose()
        assert events == 0
        assert reader.verify(against_sha256=sha) == []

    def test_single_event_segment(self, tmp_path):
        line = _record(3.5, 2, 0)
        _write_archive(tmp_path, [line])
        reader = ArchiveReader(tmp_path)
        infos = reader.segments()
        assert [(i.bucket, i.node) for i in infos] == [(0, 2)]
        payload, footer = reader.read_segment(infos[0].name, verify=True)
        assert payload == [line]
        assert footer["t_min"] == footer["t_max"] == 3.5
        assert footer["schema"] == ARCHIVE_SCHEMA

    def test_writer_manifest_matches_finalize(self, tmp_path, stream):
        a, b = tmp_path / "a", tmp_path / "b"
        _write_archive(a, stream)
        writer = ArchiveWriter(b, bucket_seconds=10.0)
        for line in stream:
            record = json.loads(line)
            writer.add(record["t"], record["node"], line)
        writer.close(manifest=False)
        finalize_archive(b)
        assert (a / "MANIFEST.json").read_bytes() == (
            b / "MANIFEST.json"
        ).read_bytes()


# ------------------------------------------------------------ windowing


class TestWindowedReads:
    def _expect(self, stream, t_start, t_end, nodes=None):
        out = []
        for line in stream:
            record = json.loads(line)
            if t_start is not None and record["t"] < t_start:
                continue
            if t_end is not None and record["t"] >= t_end:
                continue
            if nodes is not None and record["node"] not in nodes:
                continue
            out.append(line)
        return out

    def test_window_matches_filtered_stream(self, tmp_path, stream):
        _write_archive(tmp_path, stream)
        reader = ArchiveReader(tmp_path)
        got = list(reader.iter_window(t_start=12.0, t_end=31.5, nodes=(1, 3)))
        assert got == self._expect(stream, 12.0, 31.5, {1, 3})

    def test_window_reads_only_addressed_segments(self, tmp_path, stream):
        """Acceptance criterion: the I/O witness must show no segment
        outside the window's bucket range / node set was ever opened."""
        _write_archive(tmp_path, stream)
        reader = ArchiveReader(tmp_path)
        t_start, t_end, nodes = 12.0, 31.5, (1, 3)
        list(reader.iter_window(t_start=t_start, t_end=t_end, nodes=nodes))
        assert reader.segments_read  # the window is non-empty
        lo = bucket_of(t_start, reader.bucket_seconds)
        hi = bucket_of(t_end, reader.bucket_seconds)
        for name in reader.segments_read:
            bucket, node, _ = parse_segment_name(name)
            assert lo <= bucket <= hi, name
            assert node in nodes, name

    def test_boundary_clipping_is_exact(self, tmp_path, stream):
        _write_archive(tmp_path, stream)
        reader = ArchiveReader(tmp_path)
        # Boundaries mid-bucket, on a record time, and on a bucket edge.
        for t_start, t_end in ((12.25, 12.26), (10.0, 20.0), (0.0, 0.25)):
            got = list(reader.iter_window(t_start=t_start, t_end=t_end))
            assert got == self._expect(stream, t_start, t_end), (t_start, t_end)


# -------------------------------------------------------------- property


@settings(max_examples=40, deadline=None)
@given(
    events=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=400).map(lambda k: k / 8.0),
            st.integers(min_value=0, max_value=4),
        ),
        max_size=120,
    ),
    shards=st.sampled_from([1, 2, 4, 7]),
    window=st.tuples(
        st.integers(min_value=0, max_value=400).map(lambda k: k / 8.0),
        st.integers(min_value=0, max_value=400).map(lambda k: k / 8.0),
    ),
)
def test_pack_window_concat_is_byte_identical(tmp_path_factory, events, shards, window):
    """Satellite property test: for random streams, shard counts, and
    windows, pack -> window-read -> concat reproduces the original JSONL
    byte-identically, and complementary windows partition the stream."""
    tmp_path = tmp_path_factory.mktemp("arc")
    stream = _canonical(events)
    root = tmp_path / "arc"
    writers = [ArchiveWriter(root, bucket_seconds=7.5) for _ in range(shards)]
    for line in stream:
        record = json.loads(line)
        writers[record["node"] % shards].add(record["t"], record["node"], line)
    for writer in writers:
        writer.close(manifest=False)
    events_count, sha = finalize_archive(root)
    assert (events_count, sha) == sha256_lines(stream)

    reader = ArchiveReader(root)
    assert list(reader.iter_window(verify=True)) == stream

    cut = sorted(window)
    before = list(reader.iter_window(t_end=cut[0]))
    middle = list(reader.iter_window(t_start=cut[0], t_end=cut[1]))
    after = list(reader.iter_window(t_start=cut[1]))
    assert before + middle + after == stream


# ------------------------------------------------------- writer contract


class TestWriterContract:
    def test_rejects_time_going_backwards_within_node(self, tmp_path):
        writer = ArchiveWriter(tmp_path, bucket_seconds=10.0)
        writer.add(5.0, 0, _record(5.0, 0, 0))
        with pytest.raises(ValueError, match="backwards"):
            writer.add(4.0, 0, _record(4.0, 0, 1))

    def test_rejects_reopening_a_closed_bucket(self, tmp_path):
        writer = ArchiveWriter(tmp_path, bucket_seconds=10.0)
        writer.add(5.0, 0, _record(5.0, 0, 0))
        writer.add(15.0, 0, _record(15.0, 0, 1))
        with pytest.raises(ValueError, match="backwards"):
            writer.add(5.0, 0, _record(5.0, 0, 2))

    def test_other_nodes_are_independent(self, tmp_path):
        writer = ArchiveWriter(tmp_path, bucket_seconds=10.0)
        writer.add(15.0, 0, _record(15.0, 0, 0))
        writer.add(5.0, 1, _record(5.0, 1, 0))  # fine: different node
        summary = writer.close()
        assert summary["events"] == 2

    def test_add_after_close_rejected(self, tmp_path):
        writer = ArchiveWriter(tmp_path, bucket_seconds=10.0)
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.add(1.0, 0, _record(1.0, 0, 0))

    def test_flush_does_not_change_final_bytes(self, tmp_path, stream):
        plain = tmp_path / "plain"
        flushed = tmp_path / "flushed"
        _write_archive(plain, stream)
        writer = ArchiveWriter(flushed, bucket_seconds=10.0)
        for index, line in enumerate(stream):
            record = json.loads(line)
            writer.add(record["t"], record["node"], line)
            if index % 17 == 0:
                writer.flush()  # epoch-barrier hook: raw flush only
        writer.close(manifest=True)
        for path in sorted(plain.iterdir()):
            assert (flushed / path.name).read_bytes() == path.read_bytes()

    def test_rows_kind_concatenates(self, tmp_path):
        writer = ArchiveWriter(
            tmp_path, bucket_seconds=10.0, kind="rows", suffix=".csv.gz"
        )
        rows = [(1.0, 0, "1.0,a"), (2.0, 1, "2.0,b"), (12.0, 0, "12.0,c")]
        for t, node, row in rows:
            writer.add(t, node, row)
        writer.close(manifest=True)
        reader = ArchiveReader(tmp_path)
        assert reader.kind == "rows"
        # (bucket, node)-ordered concatenation, no per-line key parsing.
        assert list(reader.iter_window()) == ["1.0,a", "2.0,b", "12.0,c"]


# ------------------------------------------------------------ invariants


class TestInvariants:
    def test_corruption_is_detected(self, tmp_path, stream):
        _write_archive(tmp_path, stream)
        victim = sorted(tmp_path.glob("seg-*"))[0]
        blob = bytearray(victim.read_bytes())
        # Byte 16 sits in the payload member's deflate stream (the pinned
        # gzip header is 10 bytes); flipping it corrupts decoded content.
        blob[16] ^= 0x01
        victim.write_bytes(bytes(blob))
        problems = ArchiveReader(tmp_path).verify()
        assert problems
        with pytest.raises(Violation, match="archive-verify"):
            check_trace_archive(tmp_path)

    def test_check_archive_writer_passes_live_writer(self, tmp_path, stream):
        writer = ArchiveWriter(tmp_path, bucket_seconds=10.0)
        for line in stream:
            record = json.loads(line)
            writer.add(record["t"], record["node"], line)
        check_archive_writer(writer)  # mid-run sweep: no violation
        writer.events += 1  # plant bookkeeping drift
        with pytest.raises(Violation, match="archive-writer"):
            check_archive_writer(writer)

    def test_check_digest_composition(self):
        check_digest_composition(5, "a" * 64, 5, "a" * 64)
        with pytest.raises(Violation, match="archive-digest-composition"):
            check_digest_composition(5, "a" * 64, 6, "a" * 64)
        with pytest.raises(Violation, match="archive-digest-composition"):
            check_digest_composition(5, "a" * 64, 5, "b" * 64)

    def test_check_trace_archive_against_external_digest(self, tmp_path, stream):
        _write_archive(tmp_path, stream)
        _, sha = sha256_lines(stream)
        check_trace_archive(tmp_path, against_sha256=sha)
        with pytest.raises(Violation, match="archive-verify"):
            check_trace_archive(tmp_path, against_sha256="0" * 64)


# ----------------------------------------------- manifest-driven finalize


def _sharded_writer_footers(root, stream, shards=2):
    """Write a multi-writer archive and collect the shipped footers."""
    writers = [ArchiveWriter(root, bucket_seconds=10.0) for _ in range(shards)]
    for line in stream:
        record = json.loads(line)
        writers[record["node"] % shards].add(record["t"], record["node"], line)
    footers = []
    for writer in writers:
        summary = writer.close(manifest=False)
        footers.extend(summary["segments"])
    return footers


class TestManifestDrivenFinalize:
    def test_footer_path_matches_legacy_path(self, tmp_path, stream):
        legacy_root = tmp_path / "legacy"
        _sharded_writer_footers(legacy_root, stream)
        events_legacy, sha_legacy = finalize_archive(legacy_root)

        footer_root = tmp_path / "footers"
        footers = _sharded_writer_footers(footer_root, stream)
        events, sha = finalize_archive(footer_root, footers=footers)

        assert (events, sha) == (events_legacy, sha_legacy)
        assert (footer_root / "MANIFEST.json").read_bytes() == (
            legacy_root / "MANIFEST.json"
        ).read_bytes()

    def test_event_trace_path_writes_flat_twin(self, tmp_path, stream):
        root = tmp_path / "arc"
        footers = _sharded_writer_footers(root, stream)
        flat = tmp_path / "flat.jsonl"
        events, sha = finalize_archive(
            root, footers=footers, event_trace_path=flat
        )
        lines = flat.read_text().splitlines()
        assert len(lines) == events == len(stream)
        assert lines == stream
        _, flat_sha = sha256_lines(lines)
        assert flat_sha == sha

    def test_footer_event_miscount_rejected(self, tmp_path, stream):
        root = tmp_path / "arc"
        footers = _sharded_writer_footers(root, stream)
        footers[0] = dict(footers[0], events=footers[0]["events"] + 1)
        with pytest.raises(ValueError, match="segment manifest"):
            finalize_archive(root, footers=footers)


# ------------------------------------------------- adaptive bucket sizing


class TestAdaptiveBucketSeconds:
    def test_dense_trace_keeps_base_width(self):
        from repro.trace.archive import adaptive_bucket_seconds

        times = [i * 0.1 for i in range(10_000)]  # 600/cell at base 60
        assert adaptive_bucket_seconds(times, base_seconds=60.0) == 60.0

    def test_sparse_trace_widens_by_powers_of_two(self):
        from repro.trace.archive import adaptive_bucket_seconds

        times = [float(i * 60) for i in range(64)]  # one event per cell
        width = adaptive_bucket_seconds(
            times, base_seconds=60.0, target_events=256, max_scale=64
        )
        assert width == 60.0 * 64  # capped before reaching 256/cell
        mid = adaptive_bucket_seconds(
            times, base_seconds=60.0, target_events=4, max_scale=64
        )
        assert mid == 60.0 * 4

    def test_empty_and_degenerate_inputs(self):
        from repro.trace.archive import adaptive_bucket_seconds

        assert adaptive_bucket_seconds([], base_seconds=60.0) == 60.0
        assert adaptive_bucket_seconds([0.0], base_seconds=60.0) > 0

    def test_pure_and_order_insensitive(self):
        from repro.trace.archive import adaptive_bucket_seconds

        times = [float(i * 37 % 500) for i in range(100)]
        a = adaptive_bucket_seconds(times, base_seconds=5.0)
        b = adaptive_bucket_seconds(sorted(times), base_seconds=5.0)
        c = adaptive_bucket_seconds(list(reversed(times)), base_seconds=5.0)
        assert a == b == c

    def test_rejects_bad_parameters(self):
        from repro.trace.archive import adaptive_bucket_seconds

        with pytest.raises(ValueError):
            adaptive_bucket_seconds([1.0], base_seconds=0.0)
        with pytest.raises(ValueError):
            adaptive_bucket_seconds([1.0], target_events=0)
        with pytest.raises(ValueError):
            adaptive_bucket_seconds([1.0], max_scale=0)
