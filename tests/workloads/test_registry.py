"""Unit tests for the Table 1 registry."""

import pytest

from repro.workloads import (
    all_definitions,
    definitions_by_language,
    get_definition,
    table1_rows,
)
from repro.workloads.registry import get_stage


def test_suite_has_all_table1_functions():
    names = {d.name for d in all_definitions()}
    assert names == {
        "time",
        "sort",
        "file-hash",
        "image-resize",
        "image-pipeline",
        "hotel-searching",
        "mapreduce",
        "specjbb2015",
        "clock",
        "dynamic-html",
        "factor",
        "fft",
        "fibonacci",
        "filesystem",
        "matrix",
        "pi",
        "unionfind",
        "web-server",
        "data-analysis",
        "alexa",
    }


def test_language_split_matches_table1():
    assert len(definitions_by_language("java")) == 8
    assert len(definitions_by_language("javascript")) == 12


def test_chain_stage_counts_match_table1():
    expected = {
        "image-pipeline": 4,
        "hotel-searching": 3,
        "mapreduce": 2,
        "specjbb2015": 3,
        "data-analysis": 6,
        "alexa": 8,
    }
    for name, count in expected.items():
        assert len(get_definition(name).stages) == count
    singles = [d for d in all_definitions() if not d.is_chain]
    assert len(singles) == 14


def test_display_names_carry_stage_counts():
    assert get_definition("mapreduce").display_name() == "mapreduce (2)"
    assert get_definition("fft").display_name() == "fft"


def test_table1_rows_cover_everything():
    rows = table1_rows()
    assert len(rows) == 20
    assert all(lang in ("java", "javascript") for lang, _, _ in rows)
    assert all(desc for _, _, desc in rows)


def test_unknown_function_raises_with_candidates():
    with pytest.raises(KeyError, match="unknown function"):
        get_definition("nope")


def test_unknown_language_raises():
    with pytest.raises(KeyError):
        definitions_by_language("cobol")


def test_get_stage_resolves_chain_members():
    stage = get_stage("mapreduce.map")
    assert stage.handoff_bytes > 0
    with pytest.raises(KeyError):
        get_stage("mapreduce.shuffle")


def test_mapreduce_mapper_hands_off_reducer_does_not():
    stages = get_definition("mapreduce").stages
    assert stages[0].handoff_bytes > 0
    assert stages[1].handoff_bytes == 0


def test_deopt_sensitive_functions_marked():
    assert get_definition("unionfind").stages[0].interp_penalty == pytest.approx(1.74)
    assert all(
        stage.interp_penalty > 2.0 for stage in get_definition("data-analysis").stages
    )
