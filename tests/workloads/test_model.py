"""Unit tests for function models driving runtimes."""

import pytest

from repro.mem.layout import KIB, MIB
from repro.runtime.hotspot import HotSpotRuntime
from repro.runtime.v8 import V8Runtime
from repro.workloads.model import FunctionDefinition, FunctionModel, FunctionSpec


def make_spec(**overrides) -> FunctionSpec:
    base = dict(
        name="f",
        language="java",
        description="test function",
        base_exec_seconds=0.05,
        ephemeral_bytes=2 * MIB,
        frame_bytes=256 * KIB,
        persistent_bytes=1 * MIB,
        init_ephemeral_bytes=1 * MIB,
        jitter=0.0,
    )
    base.update(overrides)
    return FunctionSpec(**base)


def booted_jvm():
    rt = HotSpotRuntime("jvm")
    rt.boot()
    return rt


class TestSpecValidation:
    def test_rejects_zero_exec_time(self):
        with pytest.raises(ValueError):
            make_spec(base_exec_seconds=0)

    def test_rejects_negative_volumes(self):
        with pytest.raises(ValueError):
            make_spec(ephemeral_bytes=-1)

    def test_definition_rejects_language_mismatch(self):
        spec = make_spec()
        with pytest.raises(ValueError):
            FunctionDefinition(
                name="f", language="javascript", description="x", stages=(spec,)
            )

    def test_definition_rejects_empty_chain(self):
        with pytest.raises(ValueError):
            FunctionDefinition(name="f", language="java", description="x", stages=())


class TestInvocation:
    def test_invocation_produces_positive_cost(self):
        rt = booted_jvm()
        model = FunctionModel(make_spec())
        result = model.invoke(rt)
        assert result.cpu_seconds > 0
        assert result.cpu_seconds >= 0.05  # at least the base exec time

    def test_persistent_state_established_once(self):
        rt = booted_jvm()
        model = FunctionModel(make_spec())
        model.invoke(rt)
        live_after_first = rt.live_bytes()
        model.invoke(rt)
        assert rt.live_bytes() == live_after_first
        assert live_after_first == pytest.approx(1 * MIB, rel=0.02)

    def test_temporaries_become_garbage_after_exit(self):
        rt = booted_jvm()
        model = FunctionModel(make_spec())
        model.invoke(rt)
        assert rt.graph.total_bytes() > rt.live_bytes()

    def test_handoff_returned_and_rooted(self):
        rt = booted_jvm()
        model = FunctionModel(make_spec(handoff_bytes=2 * MIB))
        result = model.invoke(rt)
        assert result.handoff_oid is not None
        assert result.handoff_oid in rt.graph.persistent_roots
        rt.free_persistent(result.handoff_oid)
        assert rt.live_bytes() == pytest.approx(1 * MIB, rel=0.02)

    def test_jit_warms_across_invocations(self):
        rt = V8Runtime("node")
        rt.boot()
        model = FunctionModel(make_spec(language="javascript", interp_penalty=2.0))
        first = model.invoke(rt)
        for _ in range(6):
            last = model.invoke(rt)
        assert first.jit_multiplier > last.jit_multiplier
        assert last.jit_multiplier == pytest.approx(1.0)

    def test_determinism_same_seed(self):
        costs1 = []
        costs2 = []
        for costs in (costs1, costs2):
            rt = booted_jvm()
            model = FunctionModel(make_spec(jitter=0.1), seed=7)
            for _ in range(5):
                costs.append(model.invoke(rt).cpu_seconds)
        assert costs1 == costs2

    def test_different_seeds_differ(self):
        def run(seed):
            rt = booted_jvm()
            model = FunctionModel(make_spec(jitter=0.1), seed=seed)
            return [model.invoke(rt).cpu_seconds for _ in range(5)]

        assert run(1) != run(2)

    def test_gc_and_fault_seconds_reported(self):
        rt = booted_jvm()
        model = FunctionModel(make_spec(ephemeral_bytes=16 * MIB))
        for _ in range(3):
            result = model.invoke(rt)
        assert result.gc_seconds >= 0
        assert result.fault_seconds >= 0
