"""Property-based tests over all three runtimes: collections and reclamation
never lose live data, never increase memory, and accounting stays sane."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.layout import KIB, MIB
from repro.runtime.cpython import CPythonConfig, CPythonRuntime
from repro.runtime.golang import GoConfig, GoRuntime
from repro.runtime.hotspot import HotSpotConfig, HotSpotRuntime
from repro.runtime.v8 import V8Config, V8Runtime

RUNTIMES = [
    (HotSpotRuntime, HotSpotConfig),
    (V8Runtime, V8Config),
    (CPythonRuntime, CPythonConfig),
    (GoRuntime, GoConfig),
]


def fresh(cls, cfg_cls):
    rt = cls("rt", cfg_cls(memory_budget=256 * MIB))
    rt.boot()
    return rt


@st.composite
def invocation_plans(draw):
    """A list of invocations; each is (ephemeral sizes, persistent sizes)."""
    n_invocations = draw(st.integers(1, 4))
    plans = []
    for _ in range(n_invocations):
        temps = draw(
            st.lists(st.integers(1 * KIB, 512 * KIB), min_size=0, max_size=12)
        )
        persist = draw(
            st.lists(st.integers(1 * KIB, 256 * KIB), min_size=0, max_size=3)
        )
        plans.append((temps, persist))
    return plans


def run_plan(rt, plans):
    expected_persistent = 0
    for temps, persist in plans:
        rt.begin_invocation()
        for size in temps:
            rt.alloc(size, scope="ephemeral")
        for size in persist:
            rt.alloc(size, scope="persistent")
            expected_persistent += size
        rt.end_invocation()
    return expected_persistent


@pytest.mark.parametrize("cls,cfg_cls", RUNTIMES)
@given(plans=invocation_plans())
@settings(max_examples=20, deadline=None)
def test_collection_preserves_exactly_the_live_set(cls, cfg_cls, plans):
    rt = fresh(cls, cfg_cls)
    expected = run_plan(rt, plans)
    assert rt.live_bytes() == expected
    rt.collect(full=True)
    assert rt.live_bytes() == expected
    # After a full collection nothing dead remains in the object table.
    assert rt.graph.total_bytes() == expected


@pytest.mark.parametrize("cls,cfg_cls", RUNTIMES)
@given(plans=invocation_plans())
@settings(max_examples=15, deadline=None)
def test_reclaim_never_loses_data_and_never_grows_uss(cls, cfg_cls, plans):
    rt = fresh(cls, cfg_cls)
    expected = run_plan(rt, plans)
    uss_before = rt.uss()
    outcome = rt.reclaim()
    assert rt.live_bytes() == expected
    # Promoting survivors into fresh chunks can cost a few metadata pages,
    # so allow a small slack above the pre-reclaim footprint.
    assert outcome.uss_after <= uss_before + 64 * KIB
    assert outcome.uss_after == rt.uss()
    assert outcome.cpu_seconds >= 0


@pytest.mark.parametrize("cls,cfg_cls", RUNTIMES)
@given(plans=invocation_plans())
@settings(max_examples=10, deadline=None)
def test_heap_stats_invariants(cls, cfg_cls, plans):
    rt = fresh(cls, cfg_cls)
    run_plan(rt, plans)
    stats = rt.heap_stats()
    assert 0 <= stats.used <= stats.committed
    assert stats.committed <= rt.config.max_heap + MIB


@pytest.mark.parametrize("cls,cfg_cls", RUNTIMES)
@given(plans=invocation_plans(), seed=st.integers(0, 3))
@settings(max_examples=10, deadline=None)
def test_reexecution_after_reclaim_is_equivalent(cls, cfg_cls, plans, seed):
    """Thaw-and-run: reclaiming between invocations must not change what
    the mutator observes (its live state)."""
    rt_plain = fresh(cls, cfg_cls)
    rt_reclaimed = fresh(cls, cfg_cls)
    for i, plan in enumerate(plans):
        for rt in (rt_plain, rt_reclaimed):
            run_plan(rt, [plan])
        if i % 2 == seed % 2:
            rt_reclaimed.reclaim()
    assert rt_plain.live_bytes() == rt_reclaimed.live_bytes()
