"""Unit tests for the CPython arena simulator (§7)."""

import pytest

from repro.mem.layout import KIB, MIB, PAGE_SIZE
from repro.runtime.base import OutOfMemory
from repro.runtime.cpython import CPythonConfig, CPythonRuntime


def make_runtime(budget=256 * MIB, **kwargs) -> CPythonRuntime:
    rt = CPythonRuntime("py", CPythonConfig(memory_budget=budget, **kwargs))
    rt.boot()
    return rt


def test_small_objects_pack_into_arenas():
    rt = make_runtime()
    rt.begin_invocation()
    for _ in range(20):
        rt.alloc(8 * KIB)
    assert len(rt._arenas.chunks) == 1  # 160 KiB fits one 256 KiB arena


def test_arena_grows_on_demand():
    rt = make_runtime()
    rt.begin_invocation()
    for _ in range(80):
        rt.alloc(8 * KIB)
    assert len(rt._arenas.chunks) >= 2


def test_gc_frees_only_empty_arenas():
    """CPython's central quirk: an arena survives while any object in it
    lives, stranding the rest of its pages."""
    rt = make_runtime()
    rt.begin_invocation()
    keeper = rt.alloc(8 * KIB, scope="persistent")
    for _ in range(60):
        rt.alloc(8 * KIB, scope="ephemeral")
    rt.end_invocation()
    arenas_before = len(rt._arenas.chunks)
    rt.collect()
    # The arena holding the keeper cannot be freed.
    assert 1 <= len(rt._arenas.chunks) < arenas_before + 1
    assert keeper in rt.graph.objects


def test_gc_triggered_by_allocation_threshold():
    rt = make_runtime()
    rt.begin_invocation()
    threshold = rt.config.gc_threshold_bytes
    for _ in range(threshold // (32 * KIB) + 4):
        rt.alloc(32 * KIB, scope="ephemeral")
    assert rt.gc_count >= 1


def test_reclaim_releases_free_pages_inside_live_arenas():
    rt = make_runtime()
    rt.begin_invocation()
    keeper = rt.alloc(8 * KIB, scope="persistent")
    for _ in range(28):
        rt.alloc(8 * KIB, scope="ephemeral")
    rt.end_invocation()
    rt.collect()
    uss_after_gc = rt.uss()
    outcome = rt.reclaim()
    assert outcome.released_bytes > 0
    assert outcome.uss_after < uss_after_gc
    assert keeper in rt.graph.objects


def test_large_allocations_bypass_arenas():
    rt = make_runtime()
    rt.begin_invocation()
    oid = rt.alloc(1 * MIB)
    assert oid in rt._large
    assert rt._arenas.used == 0


def test_dead_large_allocation_unmapped_at_gc():
    rt = make_runtime()
    rt.begin_invocation()
    rt.alloc(1 * MIB, scope="ephemeral")
    rt.collect()
    assert not rt._large


def test_oom_on_unbounded_live_data():
    rt = make_runtime(budget=16 * MIB)
    rt.begin_invocation()
    with pytest.raises(OutOfMemory):
        for _ in range(300):
            rt.alloc(64 * KIB)


def test_heap_stats_track_arena_usage():
    rt = make_runtime()
    rt.begin_invocation()
    rt.alloc(32 * KIB)
    stats = rt.heap_stats()
    assert stats.used >= 32 * KIB
    assert stats.committed >= stats.used
