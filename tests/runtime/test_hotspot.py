"""Unit tests for the HotSpot serial-GC simulator."""

import pytest

from repro.mem.layout import KIB, MIB
from repro.runtime.base import OutOfMemory
from repro.runtime.hotspot import HotSpotConfig, HotSpotRuntime
from repro.runtime.hotspot.policy import ResizePolicy


def make_runtime(budget=256 * MIB, **kwargs) -> HotSpotRuntime:
    rt = HotSpotRuntime("jvm", HotSpotConfig(memory_budget=budget, **kwargs))
    rt.boot()
    return rt


class TestBootAndLayout:
    def test_boot_maps_heap_and_libraries(self):
        rt = make_runtime()
        names = [m.name for m in rt.space.mappings()]
        assert "[java heap]" in " ".join(names)
        assert any("libjvm" in n for n in names)

    def test_double_boot_rejected(self):
        rt = make_runtime()
        with pytest.raises(RuntimeError):
            rt.boot()

    def test_alloc_before_boot_rejected(self):
        rt = HotSpotRuntime("jvm")
        with pytest.raises(RuntimeError):
            rt.alloc(100)

    def test_generations_partition_the_reserve(self):
        rt = make_runtime()
        spaces = rt._spaces()
        reserve = rt._reserved_bytes()
        assert reserve == pytest.approx(rt.config.max_heap, abs=16 * KIB)
        # NewRatio=2: the old generation holds ~2/3 of the reserve.
        assert spaces[0].reserved == pytest.approx(2 * reserve / 3, rel=0.01)

    def test_initial_committed_is_small(self):
        rt = make_runtime()
        assert rt.heap_stats().committed < 64 * MIB


class TestAllocationAndYoungGC:
    def test_allocation_lands_in_eden(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(8 * KIB)
        assert rt._where[oid] is rt._eden

    def test_eden_overflow_triggers_scavenge(self):
        rt = make_runtime()
        rt.begin_invocation()
        eden = rt._eden.committed
        n = eden // (64 * KIB) + 4
        for _ in range(n):
            rt.alloc(64 * KIB, scope="ephemeral")
        assert rt.young_gc_count >= 1

    def test_scavenge_drops_ephemeral_garbage(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(50):
            rt.alloc(64 * KIB, scope="ephemeral")
        rt.collect(full=False)
        assert rt.graph.total_bytes() < 64 * KIB * 50

    def test_survivors_copy_to_survivor_space(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(32 * KIB)  # frame-rooted: survives
        rt.collect(full=False)
        assert rt._where[oid] is rt._from
        assert rt.graph.objects[oid].age == 1

    def test_aged_objects_promote_to_old(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(32 * KIB)
        for _ in range(rt.config.tenure_threshold):
            rt.collect(full=False)
        assert rt._where[oid] is rt._old

    def test_huge_object_goes_straight_to_old(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(rt._eden.reserved + MIB)
        assert rt._where[oid] is rt._old

    def test_oom_when_live_exceeds_heap(self):
        rt = make_runtime(budget=32 * MIB)
        rt.begin_invocation()
        with pytest.raises(OutOfMemory):
            for _ in range(100):
                rt.alloc(1 * MIB)  # all frame-rooted: nothing collectible


class TestFullGCAndResize:
    def test_full_gc_compacts_into_old(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(64 * KIB)
        rt.collect(full=True)
        assert rt._where[oid] is rt._old
        assert rt._eden.top == 0
        assert rt._from.top == 0
        # Compaction packs live data at the bottom: used == live.
        assert rt._old.top == rt.graph.live_bytes()

    def test_full_gc_shrinks_oversized_heap(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(400):
            rt.alloc(256 * KIB, scope="ephemeral")
        rt.end_invocation()
        grown = rt.heap_stats().committed
        rt.full_gc()
        assert rt.heap_stats().committed < grown

    def test_free_ratio_respected_after_full_gc(self):
        policy = ResizePolicy()
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(20 * MIB, scope="persistent")
        rt.end_invocation()
        rt.full_gc()
        old = rt._old
        free_ratio = (old.committed - old.top) / old.committed
        assert (
            policy.min_heap_free_ratio - 0.05
            <= free_ratio
            <= policy.max_heap_free_ratio + 0.05
        )

    def test_shrink_releases_beyond_committed_but_not_within(self):
        """The §3.2.1 key point: GC resizing controls committed size, but
        free dirty pages below the committed boundary stay resident."""
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(200):
            rt.alloc(256 * KIB, scope="ephemeral")
        rt.end_invocation()
        uss_grown = rt.uss()
        rt.full_gc()
        uss_after_gc = rt.uss()
        assert uss_after_gc < uss_grown  # shrink released something
        # but far from ideal: committed-but-free dirty pages remain
        assert uss_after_gc > rt.ideal_uss() * 1.2

    def test_aggressive_full_gc_clears_weak_roots(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(64 * KIB, scope="weak")
        rt.full_gc(aggressive=False)
        assert oid in rt.graph.objects
        rt.full_gc(aggressive=True)
        assert oid not in rt.graph.objects


class TestReclaim:
    def test_reclaim_releases_free_committed_pages(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(200):
            rt.alloc(256 * KIB, scope="ephemeral")
        state = rt.alloc(2 * MIB, scope="persistent")
        rt.end_invocation()
        rt.full_gc()
        uss_eager = rt.uss()
        outcome = rt.reclaim()
        assert outcome.uss_after < uss_eager
        assert outcome.released_bytes > 0
        assert state in rt.graph.objects

    def test_reclaim_preserves_live_data(self):
        rt = make_runtime()
        rt.begin_invocation()
        keep = rt.alloc(5 * MIB, scope="persistent")
        rt.end_invocation()
        before = rt.live_bytes()
        outcome = rt.reclaim()
        assert rt.live_bytes() == before
        assert outcome.live_bytes == before
        assert keep in rt.graph.objects

    def test_reclaim_is_nearly_idempotent(self):
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(3 * MIB, scope="persistent")
        rt.end_invocation()
        first = rt.reclaim()
        second = rt.reclaim()
        assert second.uss_after <= first.uss_after + 64 * KIB
        assert second.released_bytes <= 64 * KIB

    def test_post_reclaim_execution_refaults(self):
        rt = make_runtime()
        for _ in range(3):
            rt.begin_invocation()
            for _ in range(50):
                rt.alloc(64 * KIB, scope="ephemeral")
            rt.end_invocation()
        rt.reclaim()
        rt.begin_invocation()
        for _ in range(50):
            rt.alloc(64 * KIB, scope="ephemeral")
        rt.end_invocation()
        assert rt.invocation_fault_seconds > 0

    def test_reclaim_cpu_time_scales_with_live_bytes(self):
        small = make_runtime()
        small.begin_invocation()
        small.alloc(1 * MIB, scope="persistent")
        small.end_invocation()
        big = make_runtime()
        big.begin_invocation()
        for _ in range(40):
            big.alloc(1 * MIB, scope="persistent")
        big.end_invocation()
        assert big.reclaim().cpu_seconds > small.reclaim().cpu_seconds


class TestMetrics:
    def test_heap_resident_tracks_touched_pages(self):
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(4 * MIB)
        assert rt.heap_resident_bytes() >= 4 * MIB

    def test_uss_includes_solo_library_pages(self):
        rt = make_runtime()
        assert rt.uss() > rt.config.native_boot_bytes

    def test_destroy_releases_all_memory(self):
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(4 * MIB)
        phys = rt.space.physical
        rt.destroy()
        assert phys.used_bytes == 0
