"""Cohort allocation: the batched fast path vs the scalar reference.

``alloc_cohort(count, unit)`` must be *semantically identical* to
``count`` scalar ``alloc(unit)`` calls -- same GC events (trigger points,
collected counts and bytes, pause seconds), same fault attribution, same
heap layout, same USS.  The differential here replays one mixed workload
through both paths and compares every observable checkpoint.
"""

from __future__ import annotations

import pytest

from repro import fastpath
from repro.mem.layout import KIB
from repro.runtime.cpython.runtime import CPythonRuntime
from repro.runtime.golang.runtime import GoRuntime
from repro.runtime.object_model import CohortObject, HeapObject, ObjectGraph


class TestObjectModel:
    def test_member_counts(self):
        assert HeapObject(oid=1, size=8).member_count == 1
        cohort = CohortObject(oid=2, size=96, count=12, unit=8)
        assert cohort.member_count == 12

    def test_new_cohort_size_and_validation(self):
        graph = ObjectGraph()
        oid = graph.new_cohort(5, 64)
        obj = graph.objects[oid]
        assert isinstance(obj, CohortObject)
        assert obj.size == 5 * 64 and obj.count == 5 and obj.unit == 64
        with pytest.raises(ValueError):
            graph.new_cohort(0, 64)
        with pytest.raises(ValueError):
            graph.new_cohort(5, 0)

    def test_sweep_counts_cohort_members(self):
        graph = ObjectGraph()
        kept = graph.new_object(32)
        graph.root_persistent(kept)
        graph.new_cohort(10, 16)  # unrooted: dies at the next sweep
        graph.new_object(8)
        count, volume = graph.sweep(graph.reachable())
        assert count == 11  # 10 members + 1 scalar
        assert volume == 10 * 16 + 8


def _drive(runtime):
    """One mixed workload; returns every observable checkpoint."""
    log = []
    runtime.boot()
    for inv in range(3):
        runtime.begin_invocation()
        runtime.touch_live_data()
        if inv == 0:
            runtime.alloc_cohort(8, 32 * KIB, scope="persistent")
        # Crosses GC triggers repeatedly; includes unaligned unit sizes.
        runtime.alloc_cohort(150, 24 * KIB, scope="ephemeral")
        runtime.alloc_cohort(45, 40 * KIB, scope="frame")
        runtime.alloc_cohort(1, 7 * KIB, scope="ephemeral")
        runtime.alloc_cohort(17, 5000, scope="frame")
        log.append((inv, runtime.invocation_fault_seconds, runtime.invocation_gc_seconds))
        runtime.end_invocation()
    # Swap the heap out, then allocate over the swapped free space: cohort
    # touches must bill major faults to the same members the scalar path does.
    for mapping in runtime._heap_mappings():
        runtime.space.swap_out_range(mapping.start, mapping.length)
    runtime.begin_invocation()
    runtime.touch_live_data()
    runtime.alloc_cohort(120, 16 * KIB, scope="ephemeral")
    log.append(("post-swap", runtime.invocation_fault_seconds))
    runtime.end_invocation()
    log.append(("final-gc", runtime.collect(full=True)))
    stats = runtime.heap_stats()
    log.append(("heap", stats.committed, stats.used, stats.live_estimate))
    log.append(("uss", runtime.uss(), runtime.heap_resident_bytes(), runtime.live_bytes()))
    log.append(
        (
            "gc",
            runtime.gc_count,
            [(e.kind, e.seconds, e.collected_bytes, e.live_bytes) for e in runtime.gc_events],
        )
    )
    log.append(("faults", runtime.space.faults.minor, runtime.space.faults.major))
    return log


@pytest.mark.parametrize("factory", (CPythonRuntime, GoRuntime), ids=("cpython", "go"))
class TestDifferential:
    def test_cohort_path_matches_scalar_path(self, factory):
        with fastpath.override(False):
            scalar = _drive(factory("scalar"))
        with fastpath.override(True):
            cohort = _drive(factory("cohort"))
        assert scalar == cohort

    def test_member_total_is_exact(self, factory):
        """The fast path may fuse members into fewer graph nodes, but the
        mutator-visible object count and byte volume must stay exact."""
        with fastpath.override(True):
            runtime = factory("shape")
            runtime.boot()
            runtime.begin_invocation()
            oids = runtime.alloc_cohort(40, 8 * KIB, scope="frame")
            members = sum(
                runtime.graph.objects[oid].member_count for oid in set(oids)
            )
            assert members == 40
            volume = sum(runtime.graph.objects[oid].size for oid in set(oids))
            assert volume == 40 * 8 * KIB
            runtime.end_invocation()


class TestScalarFallbacks:
    def test_count_one_and_disabled_fastpath_stay_scalar(self):
        with fastpath.override(False):
            runtime = CPythonRuntime("fallback")
            runtime.boot()
            runtime.begin_invocation()
            oids = runtime.alloc_cohort(3, 4 * KIB, scope="frame")
            assert len(oids) == 3
            for oid in oids:
                assert not isinstance(runtime.graph.objects[oid], CohortObject)
            runtime.end_invocation()

    def test_large_units_stay_scalar(self):
        """Units past the large-object threshold take the scalar path even
        with the fast path on (they never share arena chunks)."""
        with fastpath.override(True):
            runtime = CPythonRuntime("large")
            threshold = runtime.config.large_object_threshold
            runtime.boot()
            runtime.begin_invocation()
            oids = runtime.alloc_cohort(2, threshold, scope="frame")
            for oid in oids:
                assert not isinstance(runtime.graph.objects[oid], CohortObject)
            runtime.end_invocation()

    def test_zero_count_returns_empty(self):
        runtime = CPythonRuntime("empty")
        runtime.boot()
        assert runtime.alloc_cohort(0, 4 * KIB) == []
