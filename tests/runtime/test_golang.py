"""Unit tests for the Go runtime simulator (§7)."""

import pytest

from repro.mem.layout import KIB, MIB, PAGE_SIZE
from repro.runtime.base import OutOfMemory
from repro.runtime.golang import GoConfig, GoRuntime
from repro.runtime.golang.runtime import ARENA_SIZE


def make_runtime(budget=256 * MIB, **kwargs) -> GoRuntime:
    rt = GoRuntime("go", GoConfig(memory_budget=budget, **kwargs))
    rt.boot()
    return rt


class TestPacer:
    def test_gc_triggered_by_gogc_pacing(self):
        rt = make_runtime()
        rt.begin_invocation()
        trigger = rt._next_gc
        for _ in range(trigger // (64 * KIB) + 4):
            rt.alloc(64 * KIB, scope="ephemeral")
        assert rt.gc_count >= 1

    def test_trigger_follows_live_size(self):
        rt = make_runtime(gogc=100)
        rt.begin_invocation()
        rt.alloc(8 * MIB, scope="persistent")  # large -> own mapping
        for _ in range(64):
            rt.alloc(128 * KIB, scope="persistent")
        rt.collect()
        live = rt.live_bytes()
        assert rt._next_gc == pytest.approx(2 * live, rel=0.01)

    def test_gogc_knob_scales_trigger(self):
        lazy = make_runtime(gogc=400)
        eager = make_runtime(gogc=50)
        for rt in (lazy, eager):
            rt.begin_invocation()
            rt.alloc(6 * MIB, scope="persistent")
            rt.collect()
        assert lazy._next_gc > eager._next_gc


class TestSweepSemantics:
    def test_swept_arenas_stay_resident(self):
        """Go's defining quirk here: sweep recycles arenas without
        returning their pages to the OS."""
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(120):
            rt.alloc(64 * KIB, scope="ephemeral")
        rt.end_invocation()
        uss_grown = rt.uss()
        rt.collect()
        assert rt._arenas.used < 1 * MIB  # swept...
        assert rt.uss() > uss_grown - 1 * MIB  # ...but still resident

    def test_emptied_arena_is_reused(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(60):
            rt.alloc(64 * KIB, scope="ephemeral")
        rt.collect()
        arenas_before = rt._arenas.total_chunks_allocated
        for _ in range(30):
            rt.alloc(64 * KIB, scope="ephemeral")
        assert rt._arenas.total_chunks_allocated == arenas_before

    def test_scavenger_respects_retention(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(120):
            rt.alloc(64 * KIB, scope="ephemeral")
        rt.collect()
        assert rt.scavenge(idle_seconds=10.0) == 0
        released = rt.scavenge(idle_seconds=600.0)
        assert released > 0


class TestReclaim:
    def test_reclaim_releases_what_the_scavenger_would_not(self):
        rt = make_runtime()
        rt.begin_invocation()
        keep = rt.alloc(256 * KIB, scope="persistent")
        for _ in range(120):
            rt.alloc(64 * KIB, scope="ephemeral")
        rt.end_invocation()
        rt.collect()
        uss_after_gc = rt.uss()
        outcome = rt.reclaim()
        assert outcome.released_bytes > 2 * MIB
        assert outcome.uss_after < uss_after_gc
        assert keep in rt.graph.objects

    def test_reclaim_preserves_live_bytes(self):
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(1 * MIB, scope="persistent")
        rt.end_invocation()
        before = rt.live_bytes()
        rt.reclaim()
        assert rt.live_bytes() == before


def test_large_objects_bypass_arenas():
    rt = make_runtime()
    rt.begin_invocation()
    oid = rt.alloc(2 * MIB)
    assert oid in rt._large
    rt.collect()  # frame-rooted: survives
    assert oid in rt._large


def test_oom_when_live_exceeds_budget():
    rt = make_runtime(budget=16 * MIB)
    rt.begin_invocation()
    with pytest.raises(OutOfMemory):
        for _ in range(400):
            rt.alloc(64 * KIB)


def test_arena_payload_excludes_metadata_page():
    rt = make_runtime()
    rt.begin_invocation()
    rt.alloc(32 * KIB)
    chunk = rt._arenas.chunks[0]
    assert chunk.payload == ARENA_SIZE - PAGE_SIZE


def test_runtime_for_builds_go():
    from repro.faas.instance import runtime_for
    from repro.workloads.model import FunctionSpec

    spec = FunctionSpec(
        name="g",
        language="go",
        description="x",
        base_exec_seconds=0.01,
        ephemeral_bytes=1 * MIB,
        frame_bytes=0,
    )
    rt = runtime_for(spec, 256 * MIB)
    assert isinstance(rt, GoRuntime)
