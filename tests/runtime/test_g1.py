"""Unit tests for the G1 region-based collector (§7)."""

import pytest

from repro.mem.layout import KIB, MIB
from repro.runtime.base import OutOfMemory
from repro.runtime.g1 import G1Config, G1Runtime
from repro.runtime.g1.regions import (
    REGION_SIZE,
    Region,
    RegionKind,
    RegionManager,
)


def make_runtime(budget=256 * MIB, **kwargs) -> G1Runtime:
    rt = G1Runtime("g1", G1Config(memory_budget=budget, **kwargs))
    rt.boot()
    return rt


class TestRegionManager:
    def test_needs_enough_regions(self):
        with pytest.raises(ValueError):
            RegionManager(2)

    def test_take_free_claims_lowest_index(self):
        mgr = RegionManager(8)
        region = mgr.take_free(RegionKind.EDEN)
        assert region.index == 0
        assert region.kind is RegionKind.EDEN
        assert mgr.free_count() == 7

    def test_allocate_rolls_to_next_region_when_full(self):
        mgr = RegionManager(8)
        first, _ = mgr.allocate(RegionKind.EDEN, 1, REGION_SIZE - 4096)
        second, _ = mgr.allocate(RegionKind.EDEN, 2, 8192)
        assert first is not second

    def test_allocate_returns_none_when_exhausted(self):
        mgr = RegionManager(4)
        for oid in range(4):
            assert mgr.allocate(RegionKind.OLD, oid, REGION_SIZE - 4096)
        assert mgr.allocate(RegionKind.OLD, 99, REGION_SIZE - 4096) is None

    def test_humongous_takes_contiguous_run(self):
        mgr = RegionManager(8)
        span = mgr.allocate_humongous(1, int(2.5 * REGION_SIZE))
        assert span is not None
        assert len(span) == 3
        indices = [r.index for r in span]
        assert indices == list(range(indices[0], indices[0] + 3))
        assert all(r.kind is RegionKind.HUMONGOUS for r in span)

    def test_humongous_fails_without_contiguous_run(self):
        mgr = RegionManager(6)
        # Occupy every other region to fragment the free list.
        for index in (0, 2, 4):
            mgr.regions[index].kind = RegionKind.OLD
        assert mgr.allocate_humongous(1, 2 * REGION_SIZE) is None

    def test_garbage_bytes_ranking_quantity(self):
        region = Region(0, kind=RegionKind.OLD)
        region.bump(1, 600 * KIB)
        region.bump(2, 200 * KIB)
        sizes = {1: 600 * KIB}  # object 2 died
        assert region.garbage_bytes(sizes) == 200 * KIB
        assert region.live_bytes(sizes) == 600 * KIB


class TestCollections:
    def test_young_gc_frees_eden_regions(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(200):
            rt.alloc(48 * KIB, scope="ephemeral")
        assert rt.young_gc_count >= 1
        # After collections, eden stays bounded around the young target.
        assert len(rt._regions.by_kind(RegionKind.EDEN)) <= rt._young_target() + 1

    def test_survivors_age_then_promote(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(64 * KIB)
        for _ in range(rt.config.tenure_threshold + 1):
            rt.collect(full=False)
        assert rt._where[oid].kind is RegionKind.OLD

    def test_mixed_gc_after_marking(self):
        """Old garbage past the IHOP triggers marking, then a mixed GC
        evacuates the most-garbage old regions."""
        rt = make_runtime(budget=48 * MIB, ihop=0.1)
        rt.begin_invocation()
        handles = [rt.alloc(96 * KIB, scope="persistent") for _ in range(120)]
        for _ in range(rt.config.tenure_threshold + 1):
            rt.collect(full=False)  # promote everything to old
        for oid in handles[::2]:
            rt.free_persistent(oid)  # riddle old regions with garbage
        rt.collect(full=False)  # marking scheduled
        rt.collect(full=False)  # mixed collection
        assert rt.mixed_gc_count >= 1

    def test_evacuated_regions_keep_dirty_pages(self):
        """The frozen-garbage mechanic: FREE regions stay resident."""
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(200):
            rt.alloc(48 * KIB, scope="ephemeral")
        rt.end_invocation()
        uss = rt.uss()
        rt.collect(full=True)
        assert rt.uss() > uss - 2 * MIB  # compaction freed almost nothing

    def test_dead_humongous_swept_at_gc(self):
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(2 * MIB, scope="ephemeral")
        spans = rt._regions.by_kind(RegionKind.HUMONGOUS)
        assert len(spans) >= 2
        rt.collect(full=False)
        assert rt._regions.by_kind(RegionKind.HUMONGOUS) == []

    def test_live_humongous_survives(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(2 * MIB, scope="persistent")
        rt.collect(full=True)
        assert oid in rt.graph.objects
        assert rt._regions.by_kind(RegionKind.HUMONGOUS)

    def test_oom_when_regions_exhausted_by_live_data(self):
        rt = make_runtime(budget=24 * MIB)
        rt.begin_invocation()
        with pytest.raises(OutOfMemory):
            for _ in range(600):
                rt.alloc(96 * KIB)  # frame-rooted: nothing collectible


class TestReclaim:
    def test_reclaim_releases_free_regions(self):
        rt = make_runtime()
        rt.begin_invocation()
        keep = rt.alloc(1 * MIB, scope="persistent")
        for _ in range(300):
            rt.alloc(48 * KIB, scope="ephemeral")
        rt.end_invocation()
        outcome = rt.reclaim()
        assert outcome.released_bytes > 4 * MIB
        assert outcome.uss_after < outcome.uss_before
        assert keep in rt.graph.objects
        # Close to ideal: live + native (libraries are the §4.6 job).
        heap_resident = rt.heap_resident_bytes()
        assert heap_resident <= rt.live_bytes() + 3 * REGION_SIZE

    def test_reclaim_preserves_live_bytes(self):
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(3 * MIB, scope="persistent")
        rt.end_invocation()
        before = rt.live_bytes()
        rt.reclaim()
        assert rt.live_bytes() == before

    def test_post_reclaim_execution_works(self):
        rt = make_runtime()
        for _ in range(3):
            rt.begin_invocation()
            for _ in range(50):
                rt.alloc(48 * KIB, scope="ephemeral")
            rt.end_invocation()
        rt.reclaim()
        rt.begin_invocation()
        rt.alloc(48 * KIB)
        rt.end_invocation()


def test_g1_vs_serial_same_frozen_garbage_story():
    """§7: G1 is as frozen-garbage-prone as the serial collector, and
    Desiccant reclaims both to a similar floor."""
    from repro.runtime.hotspot import HotSpotRuntime

    def exercise(rt):
        rt.boot()
        for _ in range(20):
            rt.begin_invocation()
            for _ in range(100):
                rt.alloc(48 * KIB, scope="ephemeral")
            rt.end_invocation()
        return rt

    g1 = exercise(G1Runtime("g1"))
    serial = exercise(HotSpotRuntime("serial"))
    assert g1.uss() > g1.ideal_uss() * 1.3
    g1_out = g1.reclaim()
    serial_out = serial.reclaim()
    assert g1_out.uss_after < g1_out.uss_before
    # Both land within a few MiB of each other after reclamation.
    assert abs(g1_out.uss_after - serial_out.uss_after) < 8 * MIB
