"""Tests for the §5.4 parallel-collection suggestion (gc_threads)."""

import pytest

from repro.mem.layout import KIB, MIB
from repro.runtime.g1 import G1Config, G1Runtime
from repro.runtime.golang import GoConfig, GoRuntime
from repro.runtime.hotspot import HotSpotConfig, HotSpotRuntime
from repro.runtime.v8 import V8Config, V8Runtime

RUNTIMES = [
    (HotSpotRuntime, HotSpotConfig),
    (V8Runtime, V8Config),
    (GoRuntime, GoConfig),
    (G1Runtime, G1Config),
]


def exercised(cls, cfg_cls, threads):
    rt = cls("rt", cfg_cls(gc_threads=threads))
    rt.boot()
    rt.begin_invocation()
    for _ in range(80):
        rt.alloc(64 * KIB, scope="ephemeral")
    rt.alloc(4 * MIB, scope="persistent")
    rt.end_invocation()
    return rt


@pytest.mark.parametrize("cls,cfg_cls", RUNTIMES)
def test_more_threads_shorter_pauses(cls, cfg_cls):
    serial = exercised(cls, cfg_cls, threads=1)
    parallel = exercised(cls, cfg_cls, threads=4)
    pause_serial = serial.collect(full=True)
    pause_parallel = parallel.collect(full=True)
    assert pause_parallel < pause_serial
    # Near-linear speedup with the coordination tax.
    assert pause_parallel > pause_serial / 4


@pytest.mark.parametrize("cls,cfg_cls", RUNTIMES)
def test_memory_outcome_independent_of_threads(cls, cfg_cls):
    """Parallelism changes pauses, never what gets collected."""
    serial = exercised(cls, cfg_cls, threads=1)
    parallel = exercised(cls, cfg_cls, threads=8)
    serial.collect(full=True)
    parallel.collect(full=True)
    assert serial.live_bytes() == parallel.live_bytes()


def test_reclaim_faster_with_threads():
    """§5.4: with abundant CPU, parallel collection speeds reclamation."""
    serial = exercised(HotSpotRuntime, HotSpotConfig, threads=1)
    parallel = exercised(HotSpotRuntime, HotSpotConfig, threads=4)
    out_serial = serial.reclaim()
    out_parallel = parallel.reclaim()
    assert out_parallel.cpu_seconds < out_serial.cpu_seconds
    assert out_parallel.uss_after == pytest.approx(out_serial.uss_after, rel=0.05)


def test_single_thread_is_identity():
    one = exercised(V8Runtime, V8Config, threads=1)
    assert one._parallel_pause(0.01) == 0.01
    four = exercised(V8Runtime, V8Config, threads=4)
    assert four._parallel_pause(0.01) == pytest.approx(0.01 * 1.15 / 4)
