"""Tests for the §5.2 extension: compacting V8's old space on reclaim.

Fragmentation only bites when live objects share pages with garbage, so
the fixture scatters small (3 KiB) survivors between dead neighbours --
page-granular release then cannot free those pages, and only the free-list
compaction can.
"""

import pytest

from repro.faas.libraries import SharedLibraryPool
from repro.mem.layout import KIB, MIB
from repro.mem.physical import PhysicalMemory
from repro.runtime.v8 import V8Config, V8Runtime


def scattered_runtime(compact: bool) -> V8Runtime:
    physical = PhysicalMemory()
    pool = SharedLibraryPool(physical, runtime_classes=(V8Runtime,))
    rt = V8Runtime(
        "node",
        V8Config(compact_on_reclaim=compact),
        physical=physical,
        shared_files=pool.files,
    )
    rt.boot()
    rt.begin_invocation()
    for k in range(600):
        scope = "persistent" if k % 4 == 0 else "frame"
        rt.alloc(3 * KIB, scope=scope)
    # Promote everything to old chunks via repeated scavenges.
    for _ in range(3):
        rt.collect(full=False)
    rt.end_invocation()  # frame objects die -> holes between survivors
    return rt


def test_compaction_closes_the_fragmentation_gap():
    plain = scattered_runtime(compact=False)
    compacting = scattered_runtime(compact=True)
    plain.reclaim()
    compacting.reclaim()
    assert plain.live_bytes() == compacting.live_bytes()
    live = plain.live_bytes()
    # Without compaction, scattered survivors pin pages holding garbage.
    gap_plain = plain.heap_resident_bytes() - live
    gap_compact = compacting.heap_resident_bytes() - live
    assert gap_plain > 100 * KIB  # fragmentation is real in this fixture
    assert gap_compact < gap_plain / 3
    assert compacting.uss() < plain.uss()


def test_compaction_packs_into_fewer_chunks():
    rt = scattered_runtime(compact=True)
    chunks_before = len(rt._old.chunks)
    rt.reclaim()
    assert len(rt._old.chunks) <= chunks_before
    # Densely packed: at most one partially-filled chunk of slack.
    assert rt._old.committed <= rt._old.used + 256 * KIB + 4096


def test_compaction_preserves_object_graph():
    rt = scattered_runtime(compact=True)
    live_before = rt.live_bytes()
    roots_before = set(rt.graph.persistent_roots)
    rt.reclaim()
    assert rt.live_bytes() == live_before
    assert rt.graph.persistent_roots == roots_before


def test_compaction_costs_copy_time():
    plain = scattered_runtime(compact=False)
    compacting = scattered_runtime(compact=True)
    assert compacting.reclaim().cpu_seconds > plain.reclaim().cpu_seconds


def test_post_compaction_execution_still_works():
    rt = scattered_runtime(compact=True)
    rt.reclaim()
    rt.begin_invocation()
    rt.alloc(32 * KIB)
    rt.end_invocation()
