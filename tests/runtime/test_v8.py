"""Unit tests for the V8 simulator."""

import pytest

from repro.mem.layout import CHUNK_SIZE, KIB, MIB, PAGE_SIZE
from repro.mem.accounting import measure
from repro.runtime.base import OutOfMemory
from repro.runtime.v8 import V8Config, V8Runtime
from repro.runtime.v8.chunks import CHUNK_PAYLOAD


def make_runtime(budget=256 * MIB, **kwargs) -> V8Runtime:
    rt = V8Runtime("node", V8Config(memory_budget=budget, **kwargs))
    rt.boot()
    return rt


class TestLayout:
    def test_semispaces_start_small(self):
        rt = make_runtime()
        assert rt._from.committed <= 2 * MIB
        assert rt._from.committed == rt._to.committed

    def test_semi_max_scales_with_heap(self):
        small = make_runtime(budget=256 * MIB)
        large = make_runtime(budget=1024 * MIB)
        assert large._from.reserved == pytest.approx(
            4 * small._from.reserved, rel=0.01
        )

    def test_young_cap_is_32mb_for_256mb_heap(self):
        """The paper: fft's young generation tops out at 32 MiB (two
        16 MiB semispaces) under the 256 MiB default."""
        rt = make_runtime(budget=256 * MIB)
        young_cap = 2 * rt._from.reserved
        assert 24 * MIB <= young_cap <= 36 * MIB


class TestAllocationAndScavenge:
    def test_small_allocation_lands_in_from_space(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(8 * KIB)
        assert oid in rt._from.objects

    def test_large_object_gets_own_mapping(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(1 * MIB)
        assert oid in rt._large

    def test_scavenge_swaps_semispaces(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(8 * KIB)
        name_before = rt._from.name
        rt.collect(full=False)
        assert rt._from.name != name_before
        assert oid in rt._from.objects  # survivor lives in the new from

    def test_twice_survived_objects_promote_to_chunks(self):
        rt = make_runtime()
        rt.begin_invocation()
        oid = rt.alloc(8 * KIB)
        rt.collect(full=False)
        rt.collect(full=False)
        assert oid not in rt._from.objects
        assert any(
            oid in (o for o, _ in chunk.objects) for chunk in rt._old.chunks
        )

    def test_chunk_metadata_page_touched_on_creation(self):
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(8 * KIB)
        rt.collect(full=False)
        rt.collect(full=False)
        chunk = rt._old.chunks[0]
        assert 0 in chunk.mapping.pages  # metadata page resident

    def test_oom_when_live_exceeds_budget(self):
        rt = make_runtime(budget=16 * MIB)
        rt.begin_invocation()
        with pytest.raises(OutOfMemory):
            for _ in range(200):
                rt.alloc(1 * MIB)


class TestYoungPolicy:
    def test_high_survival_doubles_young_generation(self):
        """The fft pattern: live data accumulating across scavenges doubles
        the semispaces repeatedly."""
        rt = make_runtime()
        initial = rt._from.committed
        rt.begin_invocation()
        for _ in range(600):
            rt.alloc(64 * KIB)  # frame-rooted: survives scavenges
        assert rt._from.committed > initial

    def test_doubling_caps_at_semi_max(self):
        rt = make_runtime()
        rt.begin_invocation()
        handles = []
        # Allocate ~2x the cap in live data to push expansion to the limit.
        for _ in range(2 * rt._from.reserved // (64 * KIB)):
            try:
                handles.append(rt.alloc(64 * KIB))
            except OutOfMemory:
                break
        assert rt._from.committed <= rt._from.reserved

    def test_no_shrink_when_allocation_rate_high(self):
        """§3.2.2: eager global.gc right after heavy allocation does not
        shrink the young generation."""
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(600):
            rt.alloc(64 * KIB)
        rt.end_invocation()
        grown = rt._from.committed
        assert grown > 2 * MIB
        rt.full_gc()  # allocation counter is hot: no shrink
        assert rt._from.committed == grown

    def test_shrink_when_idle(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(600):
            rt.alloc(64 * KIB)
        rt.end_invocation()
        rt.full_gc()  # hot: no shrink
        grown = rt._from.committed
        rt.full_gc()  # counter reset by previous full GC: now idle
        assert rt._from.committed < grown


class TestFullGC:
    def test_full_gc_frees_empty_chunks(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(100):
            rt.alloc(32 * KIB)
        rt.collect(full=False)
        rt.collect(full=False)  # promote the frame-rooted survivors
        rt.end_invocation()
        chunks_before = len(rt._old.chunks)
        assert chunks_before > 0
        rt.full_gc()
        assert len(rt._old.chunks) < chunks_before

    def test_full_gc_unmaps_dead_large_objects(self):
        rt = make_runtime()
        rt.begin_invocation()
        rt.alloc(2 * MIB, scope="ephemeral")
        assert len(rt._large) == 1
        rt.full_gc()
        assert len(rt._large) == 0

    def test_aggressive_gc_drops_weak_jit_code(self):
        rt = make_runtime()
        rt.begin_invocation()
        step = rt.jit.invoke("f", 256 * KIB, warm_units=2, interp_penalty=2.0)
        assert step.multiplier == 2.0
        rt.full_gc(aggressive=False)
        assert rt.jit.warm_fraction("f", 2) == 0.5
        rt.full_gc(aggressive=True)
        assert rt.jit.warm_fraction("f", 2) == 0.0


class TestReclaim:
    def _run_hot(self, rt, n=400):
        rt.begin_invocation()
        for _ in range(n):
            rt.alloc(64 * KIB)
        state = rt.alloc(1 * MIB, scope="persistent")
        rt.end_invocation()
        return state

    def test_reclaim_beats_eager_gc(self):
        eager = make_runtime()
        self._run_hot(eager)
        eager.full_gc()
        desiccant = make_runtime()
        self._run_hot(desiccant)
        desiccant.reclaim()
        assert desiccant.uss() < eager.uss()

    def test_reclaim_shrinks_young_generation(self):
        rt = make_runtime()
        self._run_hot(rt)
        grown = rt._from.committed
        rt.reclaim()
        assert rt._from.committed < grown

    def test_reclaim_preserves_persistent_state(self):
        rt = make_runtime()
        state = self._run_hot(rt)
        rt.reclaim()
        assert state in rt.graph.objects

    def test_reclaim_keeps_chunk_metadata_pages(self):
        rt = make_runtime()
        rt.begin_invocation()
        state = rt.alloc(8 * KIB, scope="persistent")
        rt.collect(full=False)
        rt.collect(full=False)  # promote into a chunk
        rt.end_invocation()
        rt.reclaim()
        live_chunks = [
            c
            for c in rt._old.chunks
            if any(o == state for o, _ in c.objects)
        ]
        assert live_chunks
        assert 0 in live_chunks[0].mapping.pages

    def test_non_aggressive_reclaim_keeps_jit_code(self):
        rt = make_runtime()
        rt.begin_invocation()
        for _ in range(3):
            rt.jit.invoke("f", 256 * KIB, warm_units=3, interp_penalty=2.0)
        rt.end_invocation()
        assert rt.jit.warm_fraction("f", 3) == 1.0
        rt.reclaim(aggressive=False)
        assert rt.jit.warm_fraction("f", 3) == 1.0
        rt.reclaim(aggressive=True)
        assert rt.jit.warm_fraction("f", 3) == 0.0

    def test_reclaim_releases_most_chunk_payload(self):
        """§4.4: unmapping non-metadata pages releases ~98% of a chunk."""
        rt = make_runtime()
        rt.begin_invocation()
        state = rt.alloc(8 * KIB, scope="persistent")
        rt.collect(full=False)
        rt.collect(full=False)
        rt.end_invocation()
        rt.reclaim()
        chunk = next(
            c for c in rt._old.chunks if any(o == state for o, _ in c.objects)
        )
        resident = len(chunk.mapping.pages) * PAGE_SIZE
        # metadata page + the pages holding the 8 KiB object
        assert resident <= PAGE_SIZE + 16 * KIB
