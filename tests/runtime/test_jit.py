"""Unit tests for the JIT code-cache model."""

import pytest

from repro.mem.layout import KIB, MIB
from repro.runtime.hotspot import HotSpotRuntime
from repro.runtime.v8 import V8Runtime


@pytest.fixture
def v8():
    rt = V8Runtime("node")
    rt.boot()
    rt.begin_invocation()
    return rt


def test_cold_function_pays_full_penalty(v8):
    step = v8.jit.invoke("f", 128 * KIB, warm_units=4, interp_penalty=3.0)
    assert step.multiplier == pytest.approx(3.0)
    assert step.compile_seconds > 0


def test_multiplier_decays_to_one_as_units_accumulate(v8):
    multipliers = [
        v8.jit.invoke("f", 128 * KIB, warm_units=4, interp_penalty=3.0).multiplier
        for _ in range(6)
    ]
    assert multipliers == sorted(multipliers, reverse=True)
    assert multipliers[-1] == pytest.approx(1.0)
    assert v8.jit.invoke("f", 128 * KIB, 4, 3.0).compile_seconds == 0


def test_insensitive_function_never_penalized(v8):
    step = v8.jit.invoke("f", 128 * KIB, warm_units=0, interp_penalty=3.0)
    assert step.multiplier == 1.0
    step = v8.jit.invoke("g", 128 * KIB, warm_units=4, interp_penalty=1.0)
    assert step.multiplier == 1.0


def test_functions_warm_independently(v8):
    for _ in range(4):
        v8.jit.invoke("hot", 128 * KIB, 4, 2.0)
    assert v8.jit.warm_fraction("hot", 4) == 1.0
    assert v8.jit.warm_fraction("cold", 4) == 0.0


def test_aggressive_gc_dewarms_v8_but_not_hotspot():
    node = V8Runtime("node")
    node.boot()
    node.begin_invocation()
    jvm = HotSpotRuntime("jvm")
    jvm.boot()
    jvm.begin_invocation()
    for rt in (node, jvm):
        for _ in range(4):
            rt.jit.invoke("f", 128 * KIB, 4, 2.0)
        assert rt.jit.warm_fraction("f", 4) == 1.0
        rt.full_gc(aggressive=True)
    assert node.jit.warm_fraction("f", 4) == 0.0  # weak-rooted heap code
    assert jvm.jit.warm_fraction("f", 4) == 1.0  # native code cache survives
