"""Unit tests for the object graph and reachability."""

import pytest

from repro.runtime.object_model import ObjectGraph


@pytest.fixture
def graph():
    return ObjectGraph()


class TestMutation:
    def test_new_object_assigns_unique_ids(self, graph):
        a = graph.new_object(100)
        b = graph.new_object(200)
        assert a != b
        assert graph.objects[a].size == 100

    def test_zero_size_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.new_object(0)

    def test_refs_to_unknown_object_rejected(self, graph):
        with pytest.raises(KeyError):
            graph.new_object(10, refs=[999])

    def test_add_ref_links_objects(self, graph):
        a = graph.new_object(10)
        b = graph.new_object(10)
        graph.add_ref(a, b)
        assert b in graph.objects[a].refs

    def test_frame_rooting_requires_open_frame(self, graph):
        oid = graph.new_object(10)
        with pytest.raises(RuntimeError):
            graph.root_in_frame(oid)

    def test_pop_frame_without_push_raises(self, graph):
        with pytest.raises(RuntimeError):
            graph.pop_frame()


class TestReachability:
    def test_unrooted_object_is_unreachable(self, graph):
        graph.new_object(10)
        assert graph.reachable() == set()

    def test_persistent_root_keeps_chain_alive(self, graph):
        c = graph.new_object(10)
        b = graph.new_object(10, refs=[c])
        a = graph.new_object(10, refs=[b])
        graph.root_persistent(a)
        assert graph.reachable() == {a, b, c}
        assert graph.live_bytes() == 30

    def test_frame_roots_die_with_frame(self, graph):
        graph.push_frame()
        oid = graph.new_object(10)
        graph.root_in_frame(oid)
        assert graph.reachable() == {oid}
        graph.pop_frame()
        assert graph.reachable() == set()

    def test_nested_frames_both_root(self, graph):
        graph.push_frame()
        outer = graph.new_object(10)
        graph.root_in_frame(outer)
        graph.push_frame()
        inner = graph.new_object(10)
        graph.root_in_frame(inner)
        assert graph.reachable() == {outer, inner}
        graph.pop_frame()
        assert graph.reachable() == {outer}

    def test_weak_roots_excluded_when_aggressive(self, graph):
        oid = graph.new_object(10)
        graph.root_weak(oid)
        assert graph.reachable(include_weak=True) == {oid}
        assert graph.reachable(include_weak=False) == set()

    def test_strongly_reachable_weak_object_survives_aggressive(self, graph):
        weak = graph.new_object(10)
        graph.root_weak(weak)
        holder = graph.new_object(10, refs=[weak])
        graph.root_persistent(holder)
        assert weak in graph.reachable(include_weak=False)

    def test_cycles_do_not_hang_tracing(self, graph):
        a = graph.new_object(10)
        b = graph.new_object(10, refs=[a])
        graph.add_ref(a, b)
        graph.root_persistent(a)
        assert graph.reachable() == {a, b}


class TestSweep:
    def test_sweep_removes_only_dead(self, graph):
        live = graph.new_object(10)
        graph.root_persistent(live)
        dead = graph.new_object(30)
        count, collected = graph.sweep(graph.reachable())
        assert count == 1
        assert collected == 30
        assert live in graph.objects
        assert dead not in graph.objects

    def test_sweep_clears_dangling_weak_roots(self, graph):
        oid = graph.new_object(10)
        graph.root_weak(oid)
        graph.sweep(graph.reachable(include_weak=False))
        assert graph.weak_roots == set()

    def test_sweep_is_idempotent(self, graph):
        graph.root_persistent(graph.new_object(10))
        graph.new_object(10)
        graph.sweep(graph.reachable())
        count, collected = graph.sweep(graph.reachable())
        assert count == 0
        assert collected == 0

    def test_total_bytes_counts_garbage(self, graph):
        graph.new_object(100)
        oid = graph.new_object(50)
        graph.root_persistent(oid)
        assert graph.total_bytes() == 150
        assert graph.live_bytes() == 50
