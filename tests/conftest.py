"""Suite-wide fixtures: run the invariant oracle under the whole tier.

``REPRO_CHECK=1`` makes every :class:`~repro.faas.platform.FaasPlatform`
attach an :class:`~repro.check.InvariantOracle` to itself, so each
end-to-end test doubles as a conservation-law check.  The suite enables
it by default; export ``REPRO_CHECK=0`` to opt out (e.g. when timing
something), or ``REPRO_CHECK_EVERY=N`` to sample sweeps.
"""

import os

import pytest


@pytest.fixture(autouse=True)
def repro_check_enabled(monkeypatch):
    if "REPRO_CHECK" not in os.environ:
        monkeypatch.setenv("REPRO_CHECK", "1")
        # Sample 1-in-8 step sweeps: near-baseline suite runtime while the
        # fuzzer (which sweeps every op) covers the dense cadence.
        if "REPRO_CHECK_EVERY" not in os.environ:
            monkeypatch.setenv("REPRO_CHECK_EVERY", "8")
