"""Unit tests for table/CSV rendering."""

import csv

from repro.analysis.report import render_table, write_csv


def test_render_table_alignment():
    text = render_table(["name", "value"], [["fft", 1.5], ["clock", 22]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "fft" in lines[2]
    # columns align: every row has the same width
    assert len(set(len(line.rstrip()) for line in lines[2:])) <= 2


def test_render_table_handles_wide_cells():
    text = render_table(["x"], [["a-very-long-cell"]])
    assert "a-very-long-cell" in text


def test_write_csv_round_trip(tmp_path):
    path = write_csv(
        tmp_path / "out" / "fig.csv", ["a", "b"], [[1, 2], ["x", "y"]]
    )
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows == [["a", "b"], ["1", "2"], ["x", "y"]]
