"""Integration tests for the characterization harness (§3.1 / §5.2 shapes)."""

import pytest

from repro.analysis.characterize import (
    run_concurrent_instances,
    run_overhead_experiment,
    run_single,
)
from repro.mem.layout import MIB

ITERS = 30  # enough to reach steady state, cheap enough for CI


class TestRunSingle:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            run_single("fft", policy="magic")

    def test_series_lengths(self):
        run = run_single("clock", "vanilla", iterations=ITERS)
        assert len(run.uss_series) == ITERS
        assert len(run.ideal_series) == ITERS
        assert len(run.latency_series) == ITERS
        run.destroy()

    def test_desiccant_appends_post_reclaim_sample(self):
        run = run_single("clock", "desiccant", iterations=ITERS)
        assert len(run.uss_series) == ITERS + 1
        assert run.reclaim_reports
        run.destroy()

    def test_every_function_generates_frozen_garbage(self):
        """Figure 1's headline: every ratio exceeds 1."""
        for name in ("time", "clock"):  # cheapest of each language
            run = run_single(name, "vanilla", iterations=ITERS)
            assert run.max_ratio > 1.0
            assert run.avg_ratio > 1.0
            run.destroy()

    def test_policy_ordering_for_fft(self):
        """desiccant <= eager <= vanilla -- the Figure 7 ordering."""
        vanilla = run_single("fft", "vanilla", iterations=ITERS)
        eager = run_single("fft", "eager", iterations=ITERS)
        desiccant = run_single("fft", "desiccant", iterations=ITERS)
        assert desiccant.final_uss < eager.final_uss < vanilla.final_uss
        for run in (vanilla, eager, desiccant):
            run.destroy()

    def test_desiccant_close_to_ideal(self):
        run = run_single("sort", "desiccant", iterations=ITERS)
        assert run.final_uss <= run.final_ideal * 1.15
        run.destroy()

    def test_chain_accumulates_all_stages(self):
        run = run_single("mapreduce", "vanilla", iterations=5)
        assert len(run.instances) == 2
        assert run.final_uss > max(i.uss() for i in run.instances)
        run.destroy()

    def test_larger_budget_grows_js_ratio(self):
        """The Figure 4/12 effect: fft wastes more with a bigger heap."""
        small = run_single("fft", "vanilla", iterations=ITERS, memory_budget=256 * MIB)
        large = run_single("fft", "vanilla", iterations=ITERS, memory_budget=1024 * MIB)
        assert large.avg_ratio > small.avg_ratio * 1.3
        small.destroy()
        large.destroy()

    def test_java_ratio_stable_across_budgets(self):
        small = run_single("file-hash", "vanilla", iterations=ITERS)
        large = run_single(
            "file-hash", "vanilla", iterations=ITERS, memory_budget=1024 * MIB
        )
        assert large.avg_ratio == pytest.approx(small.avg_ratio, rel=0.25)
        small.destroy()
        large.destroy()


class TestOverheadExperiment:
    def test_desiccant_overhead_is_small(self):
        before, after = run_overhead_experiment(
            "sort", "desiccant", warm_iterations=25, probe_iterations=5
        )
        assert after < before * 1.25

    def test_swap_much_worse_than_desiccant(self):
        _, after_desiccant = run_overhead_experiment(
            "sort", "desiccant", warm_iterations=25, probe_iterations=5
        )
        _, after_swap = run_overhead_experiment(
            "sort", "swap", warm_iterations=25, probe_iterations=5
        )
        assert after_swap > 1.5 * after_desiccant

    def test_unknown_reclaimer_rejected(self):
        with pytest.raises(ValueError):
            run_overhead_experiment("sort", "voodoo", warm_iterations=2)


class TestConcurrentInstances:
    def test_chain_rejected(self):
        with pytest.raises(ValueError):
            run_concurrent_instances("mapreduce", count=1)

    def test_sharing_amortizes_pss(self):
        solo = run_concurrent_instances("fft", count=1, iterations=8)
        shared = run_concurrent_instances("fft", count=4, iterations=8)
        # RSS per instance is flat-ish; PSS drops toward USS with sharing.
        gap_solo = solo["pss_per_instance"] - solo["uss_per_instance"]
        gap_shared = shared["pss_per_instance"] - shared["uss_per_instance"]
        assert gap_shared < gap_solo or gap_solo == 0

    def test_desiccant_reduces_rss(self):
        vanilla = run_concurrent_instances("fft", count=1, iterations=8, desiccant=False)
        reclaimed = run_concurrent_instances("fft", count=1, iterations=8, desiccant=True)
        assert reclaimed["rss_per_instance"] < vanilla["rss_per_instance"] / 2
