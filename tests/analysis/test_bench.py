"""Tests for the parallel benchmark fan-out (repro.analysis.bench)."""

from __future__ import annotations

import json

import pytest

from repro.analysis.bench import (
    BenchSpec,
    build_grid,
    compare_micro,
    execute_spec,
    load_baseline,
    run_benchmarks,
    run_vmm_microbench,
    summarize,
    write_results,
)
from repro.cli import main as cli_main


class TestSpecs:
    def test_labels(self):
        assert (
            BenchSpec(kind="characterize", name="fft", policy="desiccant").label
            == "characterize:fft:desiccant:i30"
        )
        assert BenchSpec(kind="replay", policy="eager", scale=5.0).label == (
            "replay:eager:x5:d20"
        )
        assert BenchSpec(kind="micro").label == "micro:vmm:200mib"

    def test_specs_are_hashable_and_frozen(self):
        spec = BenchSpec(kind="micro")
        assert spec in {spec}
        with pytest.raises(AttributeError):
            spec.kind = "replay"

    def test_build_grid_shape(self):
        specs = build_grid(
            functions=["fft", "sort"],
            policies=["vanilla", "desiccant"],
            scales=[2.0],
        )
        kinds = [s.kind for s in specs]
        assert kinds.count("characterize") == 4
        assert kinds.count("replay") == 2
        assert len({s.label for s in specs}) == len(specs)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown bench kind"):
            execute_spec(BenchSpec(kind="nope"))


class TestExecution:
    def test_characterize_spec_runs(self):
        out = execute_spec(
            BenchSpec(kind="characterize", name="fft", policy="vanilla", iterations=5)
        )
        assert out["label"] == "characterize:fft:vanilla:i5"
        assert out["metrics"]["final_uss"] > 0
        assert out["wall_seconds"] >= 0 and out["cpu_seconds"] >= 0

    def test_micro_spec_runs(self):
        out = execute_spec(BenchSpec(kind="micro", size_mib=8, repeats=1))
        metrics = out["metrics"]
        assert metrics["pages"] == 8 * 256
        assert metrics["touch_ms"] > 0 and metrics["ref_touch_ms"] > 0

    def test_parallel_matches_serial(self):
        specs = [
            BenchSpec(kind="characterize", name="fft", policy=pol, iterations=5)
            for pol in ("vanilla", "desiccant")
        ]
        serial = run_benchmarks(specs, jobs=1)
        parallel = run_benchmarks(specs, jobs=2)
        assert [r["label"] for r in serial] == [r["label"] for r in parallel]
        assert [r["metrics"] for r in serial] == [r["metrics"] for r in parallel]


class TestBaseline:
    def test_round_trip_and_compare(self, tmp_path):
        metrics = run_vmm_microbench(size_mib=4, repeats=1)
        doc = summarize(
            [
                {
                    "label": "micro:vmm:4mib",
                    "spec": {"kind": "micro"},
                    "metrics": metrics,
                    "wall_seconds": 0.1,
                    "cpu_seconds": 0.1,
                }
            ]
        )
        path = tmp_path / "baseline.json"
        write_results(path, doc)
        loaded = load_baseline(path)
        assert loaded["schema"] == "repro-bench/1"
        assert compare_micro(metrics, loaded["runs"][0]["metrics"]) == []

    def test_compare_micro_flags_regression(self):
        baseline = {"touch_ms": 1.0, "discard_ms": 1.0}
        fine = {"touch_ms": 1.5, "discard_ms": 0.5}
        slow = {"touch_ms": 2.5, "discard_ms": 1.0}
        assert compare_micro(fine, baseline) == []
        failures = compare_micro(slow, baseline)
        assert len(failures) == 1 and "touch_ms" in failures[0]

    def test_compare_micro_missing_key(self):
        assert compare_micro({}, {"touch_ms": 1.0, "discard_ms": 1.0})

    def test_missing_baseline_returns_none(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None


class TestCli:
    def test_bench_micro_writes_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        code = cli_main(
            ["bench", "--suite", "micro", "--size-mib", "4", "--json", str(path)]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["runs"][0]["spec"]["kind"] == "micro"
        assert "micro:vmm:4mib" in capsys.readouterr().out

    def test_bench_check_passes_against_fresh_baseline(self, tmp_path):
        path = tmp_path / "base.json"
        assert (
            cli_main(
                ["bench", "--suite", "micro", "--size-mib", "4", "--json", str(path)]
            )
            == 0
        )
        assert (
            cli_main(
                [
                    "bench",
                    "--suite",
                    "micro",
                    "--size-mib",
                    "4",
                    "--check",
                    str(path),
                    "--factor",
                    "50",
                ]
            )
            == 0
        )

    def test_bench_check_missing_baseline_errors(self, tmp_path):
        code = cli_main(
            [
                "bench",
                "--suite",
                "micro",
                "--size-mib",
                "4",
                "--check",
                str(tmp_path / "absent.json"),
            ]
        )
        assert code == 2
