"""Tests for the parallel benchmark fan-out (repro.analysis.bench)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.bench import (
    REPLAY_SIZES,
    BenchSpec,
    _serial_twin_label,
    build_grid,
    build_replay_macro,
    compare_micro,
    compare_replay,
    execute_spec,
    load_baseline,
    replay_speedups,
    run_benchmarks,
    run_vmm_microbench,
    summarize,
    verify_coordination,
    verify_trace_identity,
    write_results,
)
from repro.cli import main as cli_main


def _replay_result(label, wall, sha="a" * 64, events=100):
    """A synthetic replay run result in the execute_spec shape."""
    return {
        "label": label,
        "spec": {"kind": "replay"},
        "metrics": {"trace_sha256": sha, "trace_events": events},
        "wall_seconds": wall,
        "cpu_seconds": wall,
    }


class TestSpecs:
    def test_labels(self):
        assert (
            BenchSpec(kind="characterize", name="fft", policy="desiccant").label
            == "characterize:fft:desiccant:i30"
        )
        assert BenchSpec(kind="replay", policy="eager", scale=5.0).label == (
            "replay:eager:x5:d20"
        )
        assert BenchSpec(kind="micro").label == "micro:vmm:200mib"

    def test_specs_are_hashable_and_frozen(self):
        spec = BenchSpec(kind="micro")
        assert spec in {spec}
        with pytest.raises(AttributeError):
            spec.kind = "replay"

    def test_build_grid_shape(self):
        specs = build_grid(
            functions=["fft", "sort"],
            policies=["vanilla", "desiccant"],
            scales=[2.0],
        )
        kinds = [s.kind for s in specs]
        assert kinds.count("characterize") == 4
        assert kinds.count("replay") == 2
        assert len({s.label for s in specs}) == len(specs)

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown bench kind"):
            execute_spec(BenchSpec(kind="nope"))


class TestExecution:
    def test_characterize_spec_runs(self):
        out = execute_spec(
            BenchSpec(kind="characterize", name="fft", policy="vanilla", iterations=5)
        )
        assert out["label"] == "characterize:fft:vanilla:i5"
        assert out["metrics"]["final_uss"] > 0
        assert out["wall_seconds"] >= 0 and out["cpu_seconds"] >= 0

    def test_micro_spec_runs(self):
        out = execute_spec(BenchSpec(kind="micro", size_mib=8, repeats=1))
        metrics = out["metrics"]
        assert metrics["pages"] == 8 * 256
        assert metrics["touch_ms"] > 0 and metrics["ref_touch_ms"] > 0

    def test_parallel_matches_serial(self):
        specs = [
            BenchSpec(kind="characterize", name="fft", policy=pol, iterations=5)
            for pol in ("vanilla", "desiccant")
        ]
        serial = run_benchmarks(specs, jobs=1)
        parallel = run_benchmarks(specs, jobs=2)
        assert [r["label"] for r in serial] == [r["label"] for r in parallel]
        assert [r["metrics"] for r in serial] == [r["metrics"] for r in parallel]


class TestBaseline:
    def test_round_trip_and_compare(self, tmp_path):
        metrics = run_vmm_microbench(size_mib=4, repeats=1)
        doc = summarize(
            [
                {
                    "label": "micro:vmm:4mib",
                    "spec": {"kind": "micro"},
                    "metrics": metrics,
                    "wall_seconds": 0.1,
                    "cpu_seconds": 0.1,
                }
            ]
        )
        path = tmp_path / "baseline.json"
        write_results(path, doc)
        loaded = load_baseline(path)
        assert loaded["schema"] == "repro-bench/1"
        assert compare_micro(metrics, loaded["runs"][0]["metrics"]) == []

    def test_compare_micro_flags_regression(self):
        baseline = {"touch_ms": 1.0, "discard_ms": 1.0}
        fine = {"touch_ms": 1.5, "discard_ms": 0.5}
        slow = {"touch_ms": 2.5, "discard_ms": 1.0}
        assert compare_micro(fine, baseline) == []
        failures = compare_micro(slow, baseline)
        assert len(failures) == 1 and "touch_ms" in failures[0]

    def test_compare_micro_missing_key(self):
        assert compare_micro({}, {"touch_ms": 1.0, "discard_ms": 1.0})

    def test_missing_baseline_returns_none(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") is None


class TestReplayMacro:
    def test_build_replay_macro_shape(self):
        specs = build_replay_macro(sizes=("small", "large"), policies=("vanilla",))
        assert len(specs) == 4  # 2 sizes x 1 policy x (fast, base)
        assert all(s.kind == "replay" and s.trace for s in specs)
        assert sum(1 for s in specs if not s.fastpath) == 2
        assert len({s.label for s in specs}) == 4
        assert any(s.label.endswith(":base") for s in specs)
        fast = next(s for s in specs if s.fastpath)
        assert fast.scale == REPLAY_SIZES["small"]["scale"]

    def test_fast_only_skips_base_legs(self):
        specs = build_replay_macro(sizes=("small",), include_base=False)
        assert all(s.fastpath for s in specs)

    def test_unknown_size_raises(self):
        with pytest.raises(ValueError, match="unknown replay size"):
            build_replay_macro(sizes=("enormous",))

    def test_base_leg_label_suffix(self):
        spec = BenchSpec(kind="replay", policy="vanilla", scale=8.0, fastpath=False)
        assert spec.label == "replay:vanilla:x8:d20:base"

    def test_verify_trace_identity_passes_on_matching_pair(self):
        results = [
            _replay_result("replay:vanilla:x8:d30", 1.0, sha="f" * 64),
            _replay_result("replay:vanilla:x8:d30:base", 2.0, sha="f" * 64),
        ]
        assert verify_trace_identity(results) == []

    def test_verify_trace_identity_flags_divergence(self):
        results = [
            _replay_result("replay:vanilla:x8:d30", 1.0, sha="f" * 64),
            _replay_result("replay:vanilla:x8:d30:base", 2.0, sha="0" * 64),
        ]
        failures = verify_trace_identity(results)
        assert len(failures) == 1 and "diverged" in failures[0]

    def test_verify_trace_identity_skips_unpaired_legs(self):
        assert verify_trace_identity([_replay_result("replay:vanilla:x8:d30", 1.0)]) == []

    def test_replay_speedups_pairs_legs(self):
        speedups = replay_speedups(
            [
                _replay_result("replay:vanilla:x8:d30", 2.0),
                _replay_result("replay:vanilla:x8:d30:base", 10.0),
            ]
        )
        entry = speedups["replay:vanilla:x8:d30"]
        assert entry["speedup"] == 5.0
        assert entry["base_wall_seconds"] == 10.0

    def test_compare_replay_gates_fast_legs_only(self):
        baseline = [
            _replay_result("replay:vanilla:x8:d30", 1.0),
            _replay_result("replay:vanilla:x8:d30:base", 5.0),
        ]
        fine = [
            _replay_result("replay:vanilla:x8:d30", 1.5),
            # Base leg got slower: informational, never gated.
            _replay_result("replay:vanilla:x8:d30:base", 50.0),
        ]
        slow = [_replay_result("replay:vanilla:x8:d30", 3.0)]
        assert compare_replay(fine, baseline, factor=2.0) == []
        failures = compare_replay(slow, baseline, factor=2.0)
        assert len(failures) == 1 and "exceeds" in failures[0]

    def test_compare_replay_reports_no_match(self):
        current = [_replay_result("replay:vanilla:x8:d30", 1.0)]
        failures = compare_replay(current, [], factor=2.0)
        assert len(failures) == 1 and "matched" in failures[0]

    def test_summarize_includes_speedups_for_paired_runs(self):
        doc = summarize(
            [
                _replay_result("replay:vanilla:x8:d30", 2.0),
                _replay_result("replay:vanilla:x8:d30:base", 6.0),
            ]
        )
        assert doc["replay_speedups"]["replay:vanilla:x8:d30"]["speedup"] == 3.0


class TestProfile:
    def test_execute_spec_dumps_profile(self, tmp_path):
        out = execute_spec(
            BenchSpec(kind="micro", size_mib=4, repeats=1),
            profile_dir=str(tmp_path),
        )
        prof = tmp_path / "micro_vmm_4mib.prof"
        listing = tmp_path / "micro_vmm_4mib.txt"
        assert prof.is_file() and listing.is_file()
        assert out["profile"] == str(prof)
        assert "cumulative" in listing.read_text()


class TestCli:
    def test_bench_micro_writes_json(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        code = cli_main(
            ["bench", "--suite", "micro", "--size-mib", "4", "--json", str(path)]
        )
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["runs"][0]["spec"]["kind"] == "micro"
        assert "micro:vmm:4mib" in capsys.readouterr().out

    def test_bench_check_passes_against_fresh_baseline(self, tmp_path):
        path = tmp_path / "base.json"
        assert (
            cli_main(
                ["bench", "--suite", "micro", "--size-mib", "4", "--json", str(path)]
            )
            == 0
        )
        assert (
            cli_main(
                [
                    "bench",
                    "--suite",
                    "micro",
                    "--size-mib",
                    "4",
                    "--check",
                    str(path),
                    "--factor",
                    "50",
                ]
            )
            == 0
        )

    def test_bench_check_missing_baseline_errors(self, tmp_path):
        code = cli_main(
            [
                "bench",
                "--suite",
                "micro",
                "--size-mib",
                "4",
                "--check",
                str(tmp_path / "absent.json"),
            ]
        )
        assert code == 2


class TestClusterLegs:
    def test_cluster_and_shard_label_suffixes(self):
        single = BenchSpec(kind="replay", policy="vanilla", scale=8.0)
        cluster = BenchSpec(kind="replay", policy="vanilla", scale=8.0, nodes=8)
        sharded = BenchSpec(
            kind="replay", policy="vanilla", scale=8.0, nodes=8, shards=4
        )
        assert single.label == "replay:vanilla:x8:d20"
        assert cluster.label == "replay:vanilla:x8:d20:n8"
        assert sharded.label == "replay:vanilla:x8:d20:n8:s4"

    def test_build_replay_macro_adds_cluster_legs(self):
        specs = build_replay_macro(
            sizes=("small",), policies=("vanilla",), nodes=8, shard_counts=(2, 4)
        )
        cluster = [s for s in specs if s.nodes]
        # One serial twin plus one leg per shard count, all traced.
        assert [s.shards for s in cluster] == [1, 2, 4]
        assert all(s.trace and s.nodes == 8 for s in cluster)
        labels = [s.label for s in cluster]
        assert labels[0].endswith(":n8")
        assert labels[1].endswith(":n8:s2") and labels[2].endswith(":n8:s4")
        # Single-platform pair still present for the vs_single pairing.
        assert sum(1 for s in specs if not s.nodes) == 2

    def test_verify_trace_identity_gates_sharded_legs(self):
        matching = [
            _replay_result("replay:vanilla:x8:d30:n8", 4.0, sha="f" * 64),
            _replay_result("replay:vanilla:x8:d30:n8:s2", 2.0, sha="f" * 64),
        ]
        assert verify_trace_identity(matching) == []
        diverged = [
            _replay_result("replay:vanilla:x8:d30:n8", 4.0, sha="f" * 64),
            _replay_result("replay:vanilla:x8:d30:n8:s2", 2.0, sha="0" * 64),
        ]
        failures = verify_trace_identity(diverged)
        assert len(failures) == 1 and "serial twin" in failures[0]

    def test_verify_trace_identity_skips_unpaired_shard_leg(self):
        alone = [_replay_result("replay:vanilla:x8:d30:n8:s2", 2.0)]
        assert verify_trace_identity(alone) == []

    def test_replay_speedups_sharded_and_vs_single_pairings(self):
        speedups = replay_speedups(
            [
                _replay_result("replay:vanilla:x8:d30", 1.0),
                _replay_result("replay:vanilla:x8:d30:n8", 4.0),
                _replay_result("replay:vanilla:x8:d30:n8:s2", 2.0),
            ]
        )
        entry = speedups["replay:vanilla:x8:d30:n8:s2"]
        assert entry["speedup"] == 2.0  # serial twin 4.0s / sharded 2.0s
        assert entry["serial_wall_seconds"] == 4.0
        assert entry["vs_single_speedup"] == 0.5  # single 1.0s / sharded 2.0s
        # The serial twin itself has no partner pairing.
        assert "replay:vanilla:x8:d30:n8" not in speedups

    def test_execute_spec_runs_sharded_cluster_replay(self):
        out = execute_spec(
            BenchSpec(
                kind="replay",
                policy="vanilla",
                scale=4.0,
                duration=10.0,
                warmup=5.0,
                capacity_mib=512,
                nodes=2,
                shards=2,
                trace=True,
            )
        )
        assert out["label"] == "replay:vanilla:x4:d10:n2:s2"
        metrics = out["metrics"]
        assert metrics["epochs"] > 0
        assert metrics["trace_events"] > 0
        assert len(metrics["trace_sha256"]) == 64


def _coord_result(label, round_trips, pipe_bytes):
    result = _replay_result(label, 1.0)
    result["metrics"]["round_trips"] = round_trips
    result["metrics"]["pipe_bytes"] = pipe_bytes
    return result


class TestProtocolLegs:
    def test_unbatched_label_suffix(self):
        spec = BenchSpec(
            kind="replay",
            policy="vanilla",
            scale=8.0,
            nodes=8,
            shards=2,
            protocol="unbatched",
        )
        assert spec.label == "replay:vanilla:x8:d20:n8:s2:unbatched"

    def test_serial_twin_label_strips_shards_and_protocol(self):
        assert (
            _serial_twin_label("replay:vanilla:x8:d30:n8:s2:unbatched")
            == "replay:vanilla:x8:d30:n8"
        )
        assert (
            _serial_twin_label("replay:vanilla:x8:d30:n8:s2")
            == "replay:vanilla:x8:d30:n8"
        )

    def test_build_replay_macro_adds_unbatched_twins(self):
        specs = build_replay_macro(
            sizes=("small",),
            policies=("vanilla",),
            nodes=8,
            shard_counts=(2,),
            include_unbatched=True,
        )
        cluster = [s for s in specs if s.nodes]
        protocols = [(s.shards, s.protocol) for s in cluster]
        # Serial twin stays batched-only; each sharded leg gets a twin.
        assert protocols == [(1, "batched"), (2, "batched"), (2, "unbatched")]
        unbatched = cluster[-1]
        assert unbatched.label.endswith(":s2:unbatched")
        # The twin times the bare protocol: no archive on it.
        assert not unbatched.archive and cluster[1].archive

    def test_verify_coordination_passes_on_big_ratios(self):
        results = [
            _coord_result("replay:vanilla:x8:d30:n8:s2", 5, 10_000),
            _coord_result("replay:vanilla:x8:d30:n8:s2:unbatched", 40, 200_000),
        ]
        assert verify_coordination(results) == []

    def test_verify_coordination_flags_weak_batching(self):
        results = [
            _coord_result("replay:vanilla:x8:d30:n8:s2", 20, 150_000),
            _coord_result("replay:vanilla:x8:d30:n8:s2:unbatched", 40, 200_000),
        ]
        failures = verify_coordination(results)
        assert len(failures) == 2
        assert "round-trips" in failures[0]
        assert "pipe bytes" in failures[1]

    def test_verify_coordination_skips_unpaired_legs(self):
        alone = [_coord_result("replay:vanilla:x8:d30:n8:s2", 5, 10_000)]
        assert verify_coordination(alone) == []

    def test_verify_coordination_skips_inline_zero_byte_twin(self):
        # An inline (processes=False) twin records zero pipe bytes; only
        # the round-trip gate applies then.
        results = [
            _coord_result("replay:vanilla:x8:d30:n8:s2", 5, 0),
            _coord_result("replay:vanilla:x8:d30:n8:s2:unbatched", 40, 0),
        ]
        assert verify_coordination(results) == []

    def test_summarize_records_cpu_count(self):
        document = summarize([_replay_result("replay:vanilla:x8:d30", 1.0)])
        import os

        assert document["cpu_count"] == os.cpu_count()

    def test_execute_spec_records_coordination_metrics(self):
        out = execute_spec(
            BenchSpec(
                kind="replay",
                policy="vanilla",
                scale=4.0,
                duration=10.0,
                warmup=5.0,
                capacity_mib=512,
                nodes=2,
                shards=2,
                trace=True,
            )
        )
        metrics = out["metrics"]
        assert metrics["round_trips"] > 0
        assert metrics["pipe_bytes"] > 0
        assert metrics["pipe_bytes_per_epoch"] > 0
        assert metrics["coordination_overhead"] >= 0.0
        assert metrics["cpu_count"] == __import__("os").cpu_count()


class TestWorkerEnvPropagation:
    def test_spawn_pool_matches_serial_results(self):
        """Worker pools re-apply the parent's run flags via the
        initializer, so results are identical even under ``spawn``
        (where children inherit nothing that was set programmatically)."""
        import multiprocessing

        specs = [
            BenchSpec(kind="characterize", name="fft", policy=pol, iterations=5)
            for pol in ("vanilla", "desiccant")
        ]
        serial = run_benchmarks(specs, jobs=1)
        spawned = run_benchmarks(
            specs, jobs=2, mp_context=multiprocessing.get_context("spawn")
        )
        assert [r["metrics"] for r in spawned] == [r["metrics"] for r in serial]


def _memo_result(label, wall, sha="a" * 64, **memo_metrics):
    result = _replay_result(label, wall, sha=sha)
    result["metrics"].update(memo_metrics)
    return result


class TestMemoLegs:
    def test_memo_label_suffix(self):
        serial = BenchSpec(kind="replay", policy="vanilla", scale=8.0, memo=True)
        sharded = BenchSpec(
            kind="replay", policy="vanilla", scale=8.0, nodes=8, shards=4, memo=True
        )
        assert serial.label == "replay:vanilla:x8:d20:memo"
        assert sharded.label == "replay:vanilla:x8:d20:n8:s4:memo"

    def test_build_replay_macro_adds_memo_twins(self):
        specs = build_replay_macro(
            sizes=("small",),
            policies=("vanilla", "desiccant"),
            include_memo=True,
        )
        memo = [s for s in specs if s.memo]
        # Vanilla only by default: desiccant's threshold adaptation makes
        # its hit rate structurally near zero.
        assert len(memo) == 1 and memo[0].policy == "vanilla"
        assert memo[0].trace and not memo[0].archive and memo[0].fastpath
        assert memo[0].label.endswith(":memo")

    def test_build_replay_macro_memo_sizes_restriction(self):
        specs = build_replay_macro(
            sizes=("small", "large"),
            policies=("vanilla",),
            include_memo=True,
            memo_sizes=("large",),
        )
        memo = [s for s in specs if s.memo]
        assert len(memo) == 1
        assert memo[0].scale == REPLAY_SIZES["large"]["scale"]

    def test_build_replay_macro_adds_cluster_memo_twins(self):
        specs = build_replay_macro(
            sizes=("small",),
            policies=("vanilla",),
            nodes=8,
            shard_counts=(2,),
            include_memo=True,
        )
        memo = [s.label for s in specs if s.memo]
        assert memo == [
            "replay:vanilla:x8:d30:memo",
            "replay:vanilla:x8:d30:n8:memo",
            "replay:vanilla:x8:d30:n8:s2:memo",
        ]

    def test_verify_trace_identity_gates_memo_twins(self):
        matching = [
            _replay_result("replay:vanilla:x8:d30", 2.0, sha="f" * 64),
            _replay_result("replay:vanilla:x8:d30:memo", 1.0, sha="f" * 64),
        ]
        assert verify_trace_identity(matching) == []
        diverged = [
            _replay_result("replay:vanilla:x8:d30", 2.0, sha="f" * 64),
            _replay_result("replay:vanilla:x8:d30:memo", 1.0, sha="0" * 64),
        ]
        failures = verify_trace_identity(diverged)
        assert len(failures) == 1 and "memoized trace diverged" in failures[0]

    def test_verify_trace_identity_gates_sharded_memo_against_memo_serial(self):
        results = [
            _replay_result("replay:vanilla:x8:d30:n8:memo", 2.0, sha="f" * 64),
            _replay_result("replay:vanilla:x8:d30:n8:s2:memo", 1.0, sha="0" * 64),
        ]
        failures = verify_trace_identity(results)
        assert len(failures) == 1 and "serial twin" in failures[0]

    def test_verify_trace_identity_skips_unpaired_memo_leg(self):
        alone = [_replay_result("replay:vanilla:x8:d30:memo", 1.0)]
        assert verify_trace_identity(alone) == []

    def test_replay_speedups_memo_pairing(self):
        speedups = replay_speedups(
            [
                _replay_result("replay:vanilla:x8:d30", 3.0),
                _replay_result("replay:vanilla:x8:d30:memo", 1.5),
            ]
        )
        entry = speedups["replay:vanilla:x8:d30:memo"]
        assert entry["memo_speedup"] == 2.0
        assert entry["plain_wall_seconds"] == 3.0
        assert entry["memo_wall_seconds"] == 1.5

    def test_execute_spec_memo_leg_matches_plain_and_reports_counters(self):
        base = dict(
            kind="replay",
            policy="vanilla",
            scale=4.0,
            duration=10.0,
            warmup=5.0,
            capacity_mib=512,
            trace=True,
        )
        plain = execute_spec(BenchSpec(**base))
        memo = execute_spec(BenchSpec(**base, memo=True))
        assert memo["label"] == plain["label"] + ":memo"
        assert (
            memo["metrics"]["trace_sha256"] == plain["metrics"]["trace_sha256"]
        )
        for key in (
            "memo_hits",
            "memo_misses",
            "memo_evictions",
            "memo_entries",
            "memo_cached_bytes",
            "memo_hit_rate",
        ):
            assert key in memo["metrics"], key
            assert key not in plain["metrics"], key
        assert memo["metrics"]["memo_hits"] + memo["metrics"]["memo_misses"] > 0

    def test_execute_spec_records_tracemalloc_peak(self):
        out = execute_spec(BenchSpec(kind="micro", size_mib=4, repeats=1))
        assert out["peak_tracemalloc_bytes"] > 0

    def test_write_profile_diffs_pairs_memo_twin(self, tmp_path):
        from repro.analysis.bench import write_profile_diffs

        base = dict(
            kind="replay",
            policy="vanilla",
            scale=3.0,
            duration=8.0,
            warmup=4.0,
            capacity_mib=512,
            trace=True,
        )
        results = [
            execute_spec(BenchSpec(**base), profile_dir=str(tmp_path)),
            execute_spec(BenchSpec(**base, memo=True), profile_dir=str(tmp_path)),
        ]
        written = write_profile_diffs(str(tmp_path), results)
        assert len(written) == 1
        listing = Path(written[0]).read_text()
        assert "profile-diff" in listing
        assert "replay:vanilla:x3:d8:memo vs replay:vanilla:x3:d8" in listing
        # The diff ranks real functions with signed deltas.
        assert "(" in listing and "+" in listing

    def test_write_profile_diffs_skips_unpaired_legs(self, tmp_path):
        results = [
            execute_spec(
                BenchSpec(
                    kind="replay",
                    policy="vanilla",
                    scale=3.0,
                    duration=8.0,
                    warmup=4.0,
                    capacity_mib=512,
                    trace=True,
                    memo=True,
                ),
                profile_dir=str(tmp_path),
            )
        ]
        from repro.analysis.bench import write_profile_diffs

        assert write_profile_diffs(str(tmp_path), results) == []
