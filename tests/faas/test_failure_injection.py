"""Failure injection: the races and deaths §4.2 argues are harmless."""

import pytest

from repro.core import ActivationController, Desiccant
from repro.core.profiles import ProfileStore
from repro.core.reclaimer import reclaim_instance
from repro.faas.instance import FunctionInstance, InstanceState
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.mem.layout import MIB
from repro.workloads.registry import get_definition


def frozen_instance(name="sort"):
    inst = FunctionInstance(get_definition(name).stages[0])
    inst.boot()
    inst.invoke(0.0)
    inst.freeze(0.0)
    return inst


class TestEvictionRacingReclamation:
    def test_evict_right_after_reclaim_is_safe(self):
        """§4.2: OpenWhisk may evict an instance under reclamation; the
        stateless design makes that a plain destroy."""
        platform = FaasPlatform(manager=Desiccant())
        platform.submit([Request(arrival=0.0, definition=get_definition("sort"))])
        platform.run()
        instance = platform.all_instances()[0]
        platform.manager.reclaim(instance)
        platform.evict(instance)
        assert instance.state is InstanceState.DEAD
        # The platform still serves the function afterwards (cold boot).
        platform.submit([Request(arrival=10.0, definition=get_definition("sort"))])
        outcomes = platform.run()
        assert outcomes[-1].cold_boots == 1

    def test_desiccant_skips_instances_evicted_mid_sweep(self):
        """An instance destroyed between ranking and reclaim must not be
        selected again (DEAD is not FROZEN)."""
        desiccant = Desiccant(
            activation=ActivationController(floor=0.01, ceiling=0.01, hysteresis=0.0)
        )
        desiccant.config.freeze_timeout_seconds = 0.0
        alive = frozen_instance("sort")
        dead = frozen_instance("file-hash")
        dead.destroy()

        class View:
            capacity_bytes = 64 * MIB

            def frozen_instances(self):
                return [alive, dead] if dead.state is not InstanceState.DEAD else [alive]

            def frozen_bytes(self):
                return sum(
                    i.uss()
                    for i in self.frozen_instances()
                    if i.state is InstanceState.FROZEN
                )

            def frozen_capacity_bytes(self):
                return self.capacity_bytes

            def idle_cpu_share(self):
                return 1.0

        desiccant.step(now=100.0, platform=View())
        assert all(r.instance_id == alive.id for r in desiccant.reports)
        alive.destroy()


class TestChainFailures:
    def test_producer_evicted_before_consumer_runs(self):
        """The mapper dies holding the handoff: the consumer stage still
        completes; the handoff memory died with the producer."""
        platform = FaasPlatform(config=PlatformConfig())
        definition = get_definition("mapreduce")
        platform.submit([Request(arrival=0.0, definition=definition)])
        platform.run()
        mapper = next(
            i for i in platform.all_instances() if i.spec.name == "mapreduce.map"
        )
        platform.evict(mapper)
        # Next request cold-boots a new mapper and completes end to end.
        platform.submit([Request(arrival=5.0, definition=definition)])
        outcomes = platform.run()
        assert len(outcomes) == 2
        assert outcomes[-1].cold_boots >= 1

    def test_reclaiming_producer_before_handoff_consumed_keeps_data(self):
        """Desiccant on a frozen producer whose handoff is still pending
        must keep the intermediate data alive (it is persistently rooted
        until the consumer picks it up)."""
        spec = get_definition("mapreduce").stages[0]
        producer = FunctionInstance(spec)
        producer.boot()
        result = producer.invoke(0.0)
        assert result.handoff_oid is not None
        producer.freeze(0.0)
        reclaim_instance(producer, ProfileStore())
        assert result.handoff_oid in producer.runtime.graph.objects
        assert producer.runtime.live_bytes() > 10 * MIB
        producer.destroy()


class TestDeadInstanceHygiene:
    def test_dead_instance_rejects_everything(self):
        inst = frozen_instance()
        inst.destroy()
        with pytest.raises(RuntimeError):
            inst.invoke()
        with pytest.raises(RuntimeError):
            inst.reclaim()

    def test_profiles_survive_unknown_instances(self):
        store = ProfileStore()
        live, cpu = store.estimate(99999, "nonexistent-function")
        assert live > 0 and cpu > 0

    def test_double_eviction_is_harmless(self):
        platform = FaasPlatform()
        platform.submit([Request(arrival=0.0, definition=get_definition("clock"))])
        platform.run()
        instance = platform.all_instances()[0]
        platform.evict(instance)
        instance.destroy()  # second teardown: no-op
        assert instance.state is InstanceState.DEAD
