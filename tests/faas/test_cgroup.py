"""Unit tests for CPU accounting."""

import pytest

from repro.faas.cgroup import CpuAccountant, weighted_cpu_seconds


class TestWeightedCpuSeconds:
    def test_paper_example(self):
        """§4.5.2: 0.5 CPU for 3 ms + 0.25 CPU for 7 ms = 3.25 ms."""
        assert weighted_cpu_seconds([(0.003, 0.5), (0.007, 0.25)]) == pytest.approx(
            0.00325
        )

    def test_empty_is_zero(self):
        assert weighted_cpu_seconds([]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            weighted_cpu_seconds([(-1.0, 0.5)])
        with pytest.raises(ValueError):
            weighted_cpu_seconds([(1.0, -0.5)])


class TestCpuAccountant:
    def test_charges_accumulate_per_category(self):
        acct = CpuAccountant(cpus=4.0)
        acct.charge("invocation", 1.0)
        acct.charge("invocation", 0.5)
        acct.charge("reclaim", 0.25)
        assert acct.busy["invocation"] == 1.5
        assert acct.total_busy() == 1.75

    def test_utilization_normalizes_by_cpus(self):
        acct = CpuAccountant(cpus=2.0)
        acct.charge("invocation", 1.0)
        assert acct.utilization(1.0) == 0.5

    def test_utilization_clamped_to_one(self):
        acct = CpuAccountant(cpus=1.0)
        acct.charge("invocation", 10.0)
        assert acct.utilization(1.0) == 1.0

    def test_category_fraction(self):
        acct = CpuAccountant()
        acct.charge("invocation", 3.0)
        acct.charge("reclaim", 1.0)
        assert acct.category_fraction("reclaim") == 0.25
        assert acct.category_fraction("missing") == 0.0

    def test_empty_fraction_is_zero(self):
        assert CpuAccountant().category_fraction("reclaim") == 0.0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CpuAccountant().charge("invocation", -1.0)

    def test_zero_window_rejected(self):
        with pytest.raises(ValueError):
            CpuAccountant().utilization(0.0)
