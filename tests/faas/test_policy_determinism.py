"""Eviction-policy determinism: heap fast path vs the linear scan.

Every policy ranks victims by a ``(key, id)`` tuple, so ties -- equal
recency, equal greedy-dual priority, equal keep-alive deadline -- resolve
identically whichever selection path runs and however the candidate list
happens to be ordered.  These tests craft exact ties and mixed
populations and require both paths to agree on the victim.
"""

from __future__ import annotations

import pytest

from repro import fastpath
from repro.faas.instance import FunctionInstance
from repro.faas.keepalive import (
    GreedyDualSizeFrequency,
    HybridHistogramKeepAlive,
    LruEviction,
)
from repro.faas.platform import VersionedList
from repro.workloads.registry import get_definition

POLICIES = (LruEviction, GreedyDualSizeFrequency, HybridHistogramKeepAlive)


def _frozen(name, used_at=0.0, frozen_at=None):
    instance = FunctionInstance(get_definition(name).stages[0])
    instance.boot()
    instance.invoke(used_at)
    instance.freeze(frozen_at if frozen_at is not None else used_at + 1.0)
    return instance


def _versioned(instances):
    candidates = VersionedList()
    candidates.extend(instances)
    candidates.adds = len(candidates)
    candidates.version = len(candidates)
    return candidates


def _choose(policy_factory, instances, now, heap):
    """One victim query on a fresh policy via the requested path."""
    with fastpath.override(heap):
        policy = policy_factory()
        candidates = _versioned(instances) if heap else list(instances)
        victim = policy.choose_victim(candidates, now)
    return victim


@pytest.mark.parametrize("policy_factory", POLICIES)
class TestTieBreaks:
    def test_exact_ties_resolve_by_id_on_both_paths(self, policy_factory):
        """Twin instances (same function, same timestamps) are an exact
        ranking tie for every policy; both paths must pick the lower id."""
        twins = [_frozen("time", used_at=5.0, frozen_at=6.0) for _ in range(3)]
        lowest = min(twins, key=lambda i: i.id)
        try:
            for ordering in (twins, list(reversed(twins))):
                linear = _choose(policy_factory, ordering, now=10.0, heap=False)
                heap = _choose(policy_factory, ordering, now=10.0, heap=True)
                assert linear is lowest, ordering
                assert heap is lowest, ordering
        finally:
            for twin in twins:
                twin.destroy()

    def test_mixed_population_agrees_across_paths(self, policy_factory):
        """A non-tied population: the heap and the linear scan must still
        name the same victim, independent of list order."""
        population = [
            _frozen("time", used_at=3.0),
            _frozen("fft", used_at=1.0),
            _frozen("sort", used_at=7.0),
        ]
        try:
            for ordering in (population, list(reversed(population))):
                linear = _choose(policy_factory, ordering, now=20.0, heap=False)
                heap = _choose(policy_factory, ordering, now=20.0, heap=True)
                assert linear is heap, ordering
        finally:
            for instance in population:
                instance.destroy()


class TestHybridProactive:
    def test_proactive_victims_match_across_paths(self):
        """Expired keep-alive windows: both paths return the same victims
        in the same (id-sorted) order."""
        instances = [
            _frozen("time", used_at=0.0, frozen_at=1.0),
            _frozen("time", used_at=0.0, frozen_at=2.0),
            _frozen("fft", used_at=0.0, frozen_at=1.0),
        ]

        def build():
            policy = HybridHistogramKeepAlive(min_window=5.0)
            # Tight inter-arrivals give "time" a short window; "fft" stays
            # at the conservative max window and must not be evicted.
            for t in (0.0, 5.0, 10.0, 15.0):
                policy.on_request("time", t)
            return policy

        try:
            with fastpath.override(False):
                linear = build().proactive_victims(list(instances), now=500.0)
            with fastpath.override(True):
                heap = build().proactive_victims(_versioned(instances), now=500.0)
            assert [i.id for i in linear] == [i.id for i in heap]
            assert [i.spec.name for i in linear] == ["time", "time"]
        finally:
            for instance in instances:
                instance.destroy()
