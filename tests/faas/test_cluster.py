"""Unit/integration tests for the multi-node cluster layer."""

import pytest

from repro.core import Desiccant
from repro.faas.cluster import Cluster, ClusterConfig
from repro.faas.platform import PlatformConfig
from repro.mem.layout import GIB, MIB
from repro.trace.generator import TraceGenerator
from repro.workloads.registry import all_definitions, get_definition


class TestConfig:
    def test_needs_a_node(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=0)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            ClusterConfig(scheduler="chaotic")


class TestRouting:
    def test_round_robin_cycles(self):
        cluster = Cluster(ClusterConfig(nodes=3, scheduler="round-robin"))
        d = get_definition("clock")
        assert [cluster.route(d) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_least_assigned_balances(self):
        cluster = Cluster(ClusterConfig(nodes=2, scheduler="least-assigned"))
        d = get_definition("clock")
        for _ in range(10):
            cluster.route(d)
        assert cluster._assigned == [5, 5]

    def test_warm_affinity_is_sticky(self):
        cluster = Cluster(ClusterConfig(nodes=4, scheduler="warm-affinity"))
        for definition in all_definitions():
            nodes = {cluster.route(definition) for _ in range(5)}
            assert len(nodes) == 1  # same function -> same node, always

    def test_warm_affinity_spreads_functions(self):
        cluster = Cluster(ClusterConfig(nodes=4, scheduler="warm-affinity"))
        homes = {d.name: cluster.route(d) for d in all_definitions()}
        assert len(set(homes.values())) >= 3  # uses most of the cluster


class TestEndToEnd:
    def _run(self, scheduler, manager_factory=None):
        cluster = Cluster(
            ClusterConfig(
                nodes=4,
                scheduler=scheduler,
                node_config=PlatformConfig(capacity_bytes=512 * MIB),
            ),
            manager_factory=manager_factory,
        )
        arrivals = TraceGenerator(seed=9).arrivals(40.0, scale_factor=10.0)
        cluster.submit(arrivals)
        stats = cluster.run()
        cluster.destroy()
        return stats

    def test_cluster_completes_all_requests(self):
        stats = self._run("round-robin")
        assert stats.completed > 50
        assert sum(stats.per_node_requests) == stats.completed

    def test_affinity_beats_round_robin_on_cold_boots(self):
        """Warm locality: concentrating a function's requests on one node
        keeps its instances warm there."""
        rr = self._run("round-robin")
        affinity = self._run("warm-affinity")
        assert affinity.cold_boot_rate < rr.cold_boot_rate

    def test_round_robin_is_better_balanced(self):
        rr = self._run("round-robin")
        affinity = self._run("warm-affinity")
        assert rr.imbalance <= affinity.imbalance + 1e-9

    def test_desiccant_improves_any_scheduler(self):
        for scheduler in ("round-robin", "warm-affinity"):
            vanilla = self._run(scheduler)
            desiccant = self._run(scheduler, manager_factory=Desiccant)
            assert desiccant.cold_boot_rate <= vanilla.cold_boot_rate, scheduler

    def test_nodes_have_independent_caches(self):
        cluster = Cluster(ClusterConfig(nodes=2, scheduler="round-robin"))
        arrivals = [(0.0, get_definition("clock")), (1.0, get_definition("clock"))]
        cluster.submit(arrivals)
        cluster.run()
        # One request per node, each a cold boot on its own cache.
        assert cluster.nodes[0].cold_boots == 1
        assert cluster.nodes[1].cold_boots == 1
        cluster.destroy()
