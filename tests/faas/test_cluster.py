"""Unit/integration tests for the multi-node cluster layer."""

import pytest

from repro.core import Desiccant
from repro.faas.cluster import Cluster, ClusterConfig
from repro.faas.keepalive import HybridHistogramKeepAlive
from repro.faas.platform import PlatformConfig, Request
from repro.mem.layout import GIB, MIB
from repro.trace.generator import TraceGenerator
from repro.workloads.registry import all_definitions, get_definition


class TestConfig:
    def test_needs_a_node(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=0)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            ClusterConfig(scheduler="chaotic")


class TestRouting:
    def test_round_robin_cycles(self):
        cluster = Cluster(ClusterConfig(nodes=3, scheduler="round-robin"))
        d = get_definition("clock")
        assert [cluster.route(d) for _ in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_least_assigned_balances(self):
        cluster = Cluster(ClusterConfig(nodes=2, scheduler="least-assigned"))
        d = get_definition("clock")
        for _ in range(10):
            cluster.route(d)
        assert cluster._assigned == [5, 5]

    def test_warm_affinity_is_sticky(self):
        cluster = Cluster(ClusterConfig(nodes=4, scheduler="warm-affinity"))
        for definition in all_definitions():
            nodes = {cluster.route(definition) for _ in range(5)}
            assert len(nodes) == 1  # same function -> same node, always

    def test_warm_affinity_spreads_functions(self):
        cluster = Cluster(ClusterConfig(nodes=4, scheduler="warm-affinity"))
        homes = {d.name: cluster.route(d) for d in all_definitions()}
        assert len(set(homes.values())) >= 3  # uses most of the cluster


class TestNodeConfigIsolation:
    """The cluster deep-copies the node config per node: stateful knobs
    (keep-alive policy histograms, the provisioned map) must never be
    shared between nodes."""

    def test_eviction_policies_are_distinct_objects(self):
        template = PlatformConfig(eviction_policy=HybridHistogramKeepAlive())
        cluster = Cluster(ClusterConfig(nodes=3, node_config=template))
        policies = [node.eviction_policy for node in cluster.nodes]
        assert len({id(p) for p in policies}) == 3
        assert all(p is not template.eviction_policy for p in policies)

    def test_policy_state_does_not_leak_between_nodes(self):
        template = PlatformConfig(eviction_policy=HybridHistogramKeepAlive())
        cluster = Cluster(
            ClusterConfig(nodes=2, scheduler="round-robin", node_config=template)
        )
        cluster.nodes[0].eviction_policy.on_request("clock", 0.0)
        cluster.nodes[0].eviction_policy.on_request("clock", 5.0)
        assert "clock" not in cluster.nodes[1].eviction_policy._last_arrival
        assert "clock" not in template.eviction_policy._last_arrival

    def test_provisioned_map_is_not_shared(self):
        template = PlatformConfig(provisioned={"clock": 1})
        cluster = Cluster(ClusterConfig(nodes=2, node_config=template))
        cluster.nodes[0].config.provisioned["sort"] = 2
        assert "sort" not in cluster.nodes[1].config.provisioned
        assert "sort" not in template.provisioned
        cluster.destroy()

    def test_node_seeds_are_offset(self):
        cluster = Cluster(ClusterConfig(nodes=3))
        seeds = [node.config.seed for node in cluster.nodes]
        assert seeds == [0, 1, 2]


class TestLeastLoadedLive:
    def test_prefers_node_with_warm_instance(self):
        cluster = Cluster(ClusterConfig(nodes=3, scheduler="least-loaded-live"))
        definition = get_definition("clock")
        # Warm the function on node 2 only.
        cluster.nodes[2].submit([Request(arrival=0.0, definition=definition)])
        cluster.kernel.run()
        assert cluster.route(definition) == 2
        cluster.destroy()

    def test_cold_case_picks_least_used_node(self):
        cluster = Cluster(ClusterConfig(nodes=3, scheduler="least-loaded-live"))
        definition = get_definition("clock")
        # No node is warm; all empty -> lowest index wins the tie on
        # (used_bytes, assigned, index), then assignment counts rotate it.
        assert cluster.route(definition) == 0
        assert cluster.route(definition) == 1

    def test_end_to_end_beats_round_robin_on_cold_boots(self):
        def run(scheduler):
            cluster = Cluster(
                ClusterConfig(
                    nodes=4,
                    scheduler=scheduler,
                    node_config=PlatformConfig(capacity_bytes=512 * MIB),
                )
            )
            arrivals = TraceGenerator(seed=9).arrivals(40.0, scale_factor=10.0)
            cluster.submit(arrivals)
            stats = cluster.run()
            cluster.destroy()
            return stats

        rr = run("round-robin")
        live = run("least-loaded-live")
        assert live.completed == rr.completed
        assert live.cold_boot_rate < rr.cold_boot_rate


class TestGlobalTimeline:
    def test_outcomes_arrive_in_completion_order(self):
        cluster = Cluster(
            ClusterConfig(
                nodes=4,
                scheduler="round-robin",
                node_config=PlatformConfig(capacity_bytes=512 * MIB),
            )
        )
        arrivals = TraceGenerator(seed=3).arrivals(30.0, scale_factor=8.0)
        cluster.submit(arrivals)
        stats = cluster.run()
        finished = [o.finished for o in cluster.outcomes]
        assert len(finished) == stats.completed > 0
        assert finished == sorted(finished)
        cluster.destroy()


class TestEndToEnd:
    def _run(self, scheduler, manager_factory=None):
        cluster = Cluster(
            ClusterConfig(
                nodes=4,
                scheduler=scheduler,
                node_config=PlatformConfig(capacity_bytes=512 * MIB),
            ),
            manager_factory=manager_factory,
        )
        arrivals = TraceGenerator(seed=9).arrivals(40.0, scale_factor=10.0)
        cluster.submit(arrivals)
        stats = cluster.run()
        cluster.destroy()
        return stats

    def test_cluster_completes_all_requests(self):
        stats = self._run("round-robin")
        assert stats.completed > 50
        assert sum(stats.per_node_requests) == stats.completed

    def test_affinity_beats_round_robin_on_cold_boots(self):
        """Warm locality: concentrating a function's requests on one node
        keeps its instances warm there."""
        rr = self._run("round-robin")
        affinity = self._run("warm-affinity")
        assert affinity.cold_boot_rate < rr.cold_boot_rate

    def test_round_robin_is_better_balanced(self):
        rr = self._run("round-robin")
        affinity = self._run("warm-affinity")
        assert rr.imbalance <= affinity.imbalance + 1e-9

    def test_desiccant_improves_any_scheduler(self):
        for scheduler in ("round-robin", "warm-affinity"):
            vanilla = self._run(scheduler)
            desiccant = self._run(scheduler, manager_factory=Desiccant)
            assert desiccant.cold_boot_rate <= vanilla.cold_boot_rate, scheduler

    def test_nodes_have_independent_caches(self):
        cluster = Cluster(ClusterConfig(nodes=2, scheduler="round-robin"))
        arrivals = [(0.0, get_definition("clock")), (1.0, get_definition("clock"))]
        cluster.submit(arrivals)
        cluster.run()
        # One request per node, each a cold boot on its own cache.
        assert cluster.nodes[0].cold_boots == 1
        assert cluster.nodes[1].cold_boots == 1
        cluster.destroy()
