"""Unit tests for the §6.1 keep-alive/eviction policies."""

import pytest

from repro.faas.instance import FunctionInstance
from repro.faas.keepalive import (
    GreedyDualSizeFrequency,
    HybridHistogramKeepAlive,
    LruEviction,
)
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.mem.layout import MIB
from repro.workloads.registry import get_definition


def frozen(name, frozen_at=0.0, used_at=0.0, invocations=2):
    inst = FunctionInstance(get_definition(name).stages[0])
    inst.boot()
    for _ in range(invocations):
        inst.invoke(used_at)
    inst.freeze(frozen_at)
    return inst


class TestLru:
    def test_picks_least_recently_used(self):
        old = frozen("time", used_at=1.0)
        recent = frozen("clock", used_at=9.0)
        assert LruEviction().choose_victim([old, recent], now=10.0) is old
        old.destroy()
        recent.destroy()

    def test_empty_returns_none(self):
        assert LruEviction().choose_victim([], now=0.0) is None


class TestGreedyDual:
    def test_prefers_cheap_to_rebuild_fat_instances(self):
        """A rarely-used JS instance (fast boot, big heap) should go before
        a hot Java one (slow boot)."""
        policy = GreedyDualSizeFrequency()
        jvm = frozen("file-hash")
        node = frozen("fft")
        for _ in range(10):
            policy.on_request("file-hash", 0.0)
        policy.on_request("fft", 0.0)
        victim = policy.choose_victim([jvm, node], now=10.0)
        assert victim is node
        jvm.destroy()
        node.destroy()

    def test_clock_ages_the_cache(self):
        policy = GreedyDualSizeFrequency()
        a = frozen("time")
        policy.choose_victim([a], now=1.0)
        assert policy.clock > 0.0
        a.destroy()

    def test_reclaimed_instance_gets_higher_priority(self):
        """Desiccant composes: a reclaimed (smaller) instance is cheaper to
        keep, so greedy-dual ranks it above its un-reclaimed twin."""
        policy = GreedyDualSizeFrequency()
        fat = frozen("sort")
        slim = frozen("sort")
        slim.reclaim()
        assert policy.priority(slim) > policy.priority(fat)
        fat.destroy()
        slim.destroy()


class TestHybridHistogram:
    def test_window_tracks_interarrivals(self):
        policy = HybridHistogramKeepAlive(min_window=1.0)
        for t in (0.0, 10.0, 20.0, 30.0, 40.0):
            policy.on_request("fft", t)
        assert policy.window("fft") == pytest.approx(10.0, rel=0.01)

    def test_unknown_function_keeps_conservatively(self):
        policy = HybridHistogramKeepAlive()
        assert policy.window("never-seen") == policy.max_window

    def test_window_bounds_respected(self):
        policy = HybridHistogramKeepAlive(min_window=5.0, max_window=50.0)
        for t in (0.0, 0.1, 0.2):
            policy.on_request("hot", t)
        assert policy.window("hot") == 5.0
        for t in (0.0, 1000.0, 2000.0):
            policy.on_request("cold", t)
        assert policy.window("cold") == 50.0

    def test_proactive_eviction_past_window(self):
        policy = HybridHistogramKeepAlive(min_window=1.0)
        for t in (0.0, 2.0, 4.0, 6.0):
            policy.on_request("time", t)
        inst = frozen("time", frozen_at=6.0)
        assert policy.proactive_victims([inst], now=7.0) == []
        victims = policy.proactive_victims([inst], now=20.0)
        assert victims == [inst]
        inst.destroy()

    def test_pressure_evicts_most_expired(self):
        policy = HybridHistogramKeepAlive(min_window=1.0)
        for t in (0.0, 2.0, 4.0):
            policy.on_request("time", t)  # 2 s window
        for t in (0.0, 50.0, 100.0):
            policy.on_request("sort", t)  # 50 s window
        short = frozen("time", frozen_at=0.0)
        long = frozen("sort", frozen_at=0.0)
        victim = policy.choose_victim([short, long], now=10.0)
        assert victim is short  # 8 s past a 2 s window beats -40 s
        short.destroy()
        long.destroy()


class TestPlatformIntegration:
    def test_platform_uses_configured_policy(self):
        policy = HybridHistogramKeepAlive(min_window=0.5, max_window=2.0)
        platform = FaasPlatform(
            config=PlatformConfig(eviction_policy=policy)
        )
        definition = get_definition("clock")
        # Train a short window, then leave a long gap: the stale instance
        # is evicted proactively when the late request arrives.
        platform.submit(
            [Request(arrival=t, definition=definition) for t in (0.0, 1.0, 2.0)]
        )
        platform.run()
        assert len(platform.all_instances()) == 1
        platform.submit([Request(arrival=50.0, definition=definition)])
        platform.run()
        assert platform.evictions >= 1

    def test_default_policy_is_lru(self):
        platform = FaasPlatform()
        assert isinstance(platform.eviction_policy, LruEviction)
