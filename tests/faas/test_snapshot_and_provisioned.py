"""Tests for the §2.1 alternatives: snapshots and provisioned concurrency."""

import pytest

from repro.faas.instance import (
    SNAPSHOT_RESTORE_SECONDS,
    FunctionInstance,
    InstanceState,
)
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.mem.layout import MIB
from repro.workloads.registry import get_definition


def run_requests(platform, name, arrivals):
    definition = get_definition(name)
    platform.submit([Request(arrival=t, definition=definition) for t in arrivals])
    return platform.run()


class TestSnapshotInstance:
    def test_snapshot_empties_memory(self):
        inst = FunctionInstance(get_definition("file-hash").stages[0])
        inst.boot()
        inst.invoke()
        uss_live = inst.uss()
        inst.snapshot()
        assert inst.state is InstanceState.FROZEN
        assert inst.snapshotted
        assert inst.uss() < uss_live / 20  # nearly everything on disk

    def test_restore_pays_latency_once(self):
        inst = FunctionInstance(get_definition("file-hash").stages[0])
        inst.boot()
        inst.invoke()
        inst.snapshot()
        assert inst.thaw() == SNAPSHOT_RESTORE_SECONDS
        inst.freeze()
        assert inst.thaw() < SNAPSHOT_RESTORE_SECONDS  # plain unpause now

    def test_restored_instance_pays_page_in_faults(self):
        inst = FunctionInstance(get_definition("file-hash").stages[0])
        inst.boot()
        plain = inst.invoke().fault_seconds
        inst.snapshot()
        inst.thaw()
        restored = inst.invoke().fault_seconds
        assert restored > plain + 0.005  # major faults on the working set

    def test_state_survives_snapshot_restore(self):
        inst = FunctionInstance(get_definition("web-server").stages[0])
        inst.boot()
        inst.invoke()
        live = inst.runtime.live_bytes()
        inst.snapshot()
        inst.thaw()
        assert inst.runtime.live_bytes() == live


class TestSnapshotPlatform:
    def test_snapshot_policy_caches_cheaply(self):
        platform = FaasPlatform(config=PlatformConfig(idle_policy="snapshot"))
        run_requests(platform, "sort", [0.0, 5.0, 10.0])
        assert platform.cold_boots == 1
        assert platform.warm_starts == 2
        # After re-freeze the cache is nearly free again.
        assert platform.frozen_bytes() < 4 * MIB

    def test_snapshot_latency_worse_than_freeze(self):
        """§2.1's trade-off: snapshots save memory but cost restore time."""
        frozen = FaasPlatform(config=PlatformConfig(idle_policy="freeze"))
        snap = FaasPlatform(config=PlatformConfig(idle_policy="snapshot"))
        out_frozen = run_requests(frozen, "sort", [0.0, 5.0, 10.0])
        out_snap = run_requests(snap, "sort", [0.0, 5.0, 10.0])
        warm_frozen = out_frozen[-1].latency
        warm_snap = out_snap[-1].latency
        assert warm_snap > warm_frozen + 0.08  # ~100 ms restore + page-ins

    def test_snapshot_memory_beats_desiccant(self):
        """Snapshots cache at near-zero memory -- cheaper than even a
        reclaimed instance, which is why the paper frames them as a
        resource/latency trade-off rather than a loser."""
        from repro.core import Desiccant

        snap = FaasPlatform(config=PlatformConfig(idle_policy="snapshot"))
        desic = FaasPlatform(manager=Desiccant())
        run_requests(snap, "sort", [0.0, 5.0])
        run_requests(desic, "sort", [0.0, 5.0])
        desic.manager.reclaim(desic.frozen_instances()[0])
        assert snap.frozen_bytes() < desic.frozen_bytes()


class TestProvisionedConcurrency:
    def test_provisioned_instances_preboot_frozen(self):
        platform = FaasPlatform(
            config=PlatformConfig(provisioned={"file-hash": 2})
        )
        assert len(platform.frozen_instances()) == 2
        assert platform.cpu.busy.get("cold_boot", 0) > 0

    def test_first_request_is_warm(self):
        platform = FaasPlatform(
            config=PlatformConfig(provisioned={"file-hash": 1})
        )
        run_requests(platform, "file-hash", [0.0])
        assert platform.cold_boots == 0
        assert platform.warm_starts == 1

    def test_chains_provision_every_stage(self):
        platform = FaasPlatform(
            config=PlatformConfig(provisioned={"mapreduce": 1})
        )
        assert len(platform.frozen_instances()) == 2  # map + reduce
        outcomes = run_requests(platform, "mapreduce", [0.0])
        assert outcomes[0].cold_boots == 0

    def test_unprovisioned_function_still_cold(self):
        platform = FaasPlatform(
            config=PlatformConfig(provisioned={"file-hash": 1})
        )
        run_requests(platform, "sort", [0.0])
        assert platform.cold_boots == 1
