"""End-to-end tests for sharded cluster replay (repro.faas.cluster).

The contract under test: a sharded run differs from the serial twin in
exactly one way -- how nodes were partitioned across kernels -- so
aggregate statistics, merged canonical trace digests, and streamed
telemetry CSVs must be byte-identical for every shard count.
"""

from __future__ import annotations

import pytest

from repro.core import Desiccant
from repro.faas.cluster import (
    Cluster,
    ClusterConfig,
    ShardedClusterSession,
    partition_nodes,
)
from repro.faas.platform import PlatformConfig
from repro.mem.layout import MIB
from repro.sim.shard import ShardWorkerError, merge_trace_files
from repro.trace.archive import ArchiveReader, finalize_archive
from repro.trace.generator import TraceGenerator
from repro.trace.replay import ClusterReplayConfig, TraceWindow, cluster_replay

ARRIVALS = TraceGenerator(seed=9).arrivals(25.0, scale_factor=8.0)


def _config(nodes=8, scheduler="warm-affinity"):
    return ClusterConfig(
        nodes=nodes,
        scheduler=scheduler,
        node_config=PlatformConfig(capacity_bytes=512 * MIB),
    )


def _run_session(
    shards,
    scheduler="warm-affinity",
    processes=False,
    tmp_path=None,
    archive=False,
    protocol="batched",
    window_epochs=32,
    epoch_seconds=5.0,
    tag="",
):
    """Drive one traced session over the shared arrival batch."""
    trace_dir = tmp_path / f"trace-s{shards}{tag}"
    telemetry_dir = tmp_path / f"telemetry-s{shards}{tag}"
    archive_dir = tmp_path / f"archive-s{shards}{tag}"
    session = ShardedClusterSession(
        _config(scheduler=scheduler),
        shards=shards,
        epoch_seconds=epoch_seconds,
        processes=processes,
        protocol=protocol,
        window_epochs=window_epochs,
        trace_dir=str(trace_dir),
        telemetry_dir=str(telemetry_dir),
        archive_dir=str(archive_dir) if archive else None,
        archive_bucket_seconds=5.0,
    )
    try:
        session.mark("start-trace")
        session.run_phase(ARRIVALS, start=0.0, end=25.0)
        nodes = session.finish()
        epochs, clock = session.epochs, session.clock
        round_trips, pipe_bytes = session.round_trips, session.pipe_bytes
    finally:
        session.close()
    events, digest = merge_trace_files(
        [nodes[node]["trace_path"] for node in sorted(nodes)]
    )
    telemetry = b"".join(
        path.read_bytes() for path in sorted(telemetry_dir.glob("node*.csv"))
    )
    if archive:
        finalize_archive(archive_dir)
    return {
        "nodes": nodes,
        "events": events,
        "digest": digest,
        "telemetry": telemetry,
        "epochs": epochs,
        "clock": clock,
        "completed": sum(len(info["outcomes"]) for info in nodes.values()),
        "archive_dir": archive_dir if archive else None,
        "round_trips": round_trips,
        "pipe_bytes": pipe_bytes,
    }


class TestPartition:
    def test_partitions_are_contiguous_and_exhaustive(self):
        parts = partition_nodes(8, 3)
        assert [n for part in parts for n in part] == list(range(8))
        assert all(part == tuple(range(part[0], part[-1] + 1)) for part in parts)

    def test_balanced_within_one(self):
        sizes = [len(p) for p in partition_nodes(10, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_shards_clamped_to_nodes(self):
        assert partition_nodes(2, 8) == [(0,), (1,)]
        assert partition_nodes(4, 0) == [(0, 1, 2, 3)]


class TestDigestIdentity:
    def test_sharded_trace_matches_serial_twin(self, tmp_path):
        """Satellite property: merged traces byte-identical to the
        serial twin for shards in {1, 2, 4, 7}."""
        serial = _run_session(1, tmp_path=tmp_path)
        assert serial["events"] > 0
        for shards in (2, 4, 7):
            sharded = _run_session(shards, tmp_path=tmp_path)
            assert sharded["events"] == serial["events"], shards
            assert sharded["digest"] == serial["digest"], shards
            assert sharded["epochs"] == serial["epochs"]
            assert sharded["clock"] == serial["clock"]

    def test_process_workers_match_inline_twin(self, tmp_path):
        inline = _run_session(2, processes=False, tmp_path=tmp_path)
        forked = _run_session(2, processes=True, tmp_path=tmp_path)
        assert forked["digest"] == inline["digest"]
        assert forked["events"] == inline["events"]

    def test_telemetry_csvs_are_byte_identical(self, tmp_path):
        """Per-epoch streamed telemetry must not depend on sharding."""
        serial = _run_session(1, tmp_path=tmp_path)
        sharded = _run_session(4, tmp_path=tmp_path)
        assert serial["telemetry"]
        assert sharded["telemetry"] == serial["telemetry"]

    def test_least_loaded_live_is_shard_count_invariant(self, tmp_path):
        """Digest routing feeds on merged epoch-boundary loads, so the
        deferred scheduler replays identically at any shard count."""
        serial = _run_session(1, scheduler="least-loaded-live", tmp_path=tmp_path)
        sharded = _run_session(3, scheduler="least-loaded-live", tmp_path=tmp_path)
        assert serial["completed"] > 0
        assert sharded["digest"] == serial["digest"]
        assert sharded["completed"] == serial["completed"]


class TestArchiveIdentity:
    def test_archive_is_byte_identical_across_shard_counts(self, tmp_path):
        """Tentpole acceptance: the segmented archives a run produces are
        byte-identical files across shard counts, and their composed
        digest equals the flat merged trace's whole-run SHA-256."""
        serial = _run_session(1, tmp_path=tmp_path, archive=True)
        reference = serial["archive_dir"]
        names = sorted(p.name for p in reference.iterdir())
        assert any(name.startswith("seg-") for name in names)

        reader = ArchiveReader(reference)
        assert reader.manifest["sha256"] == serial["digest"]
        assert reader.manifest["events"] == serial["events"]
        assert reader.verify(against_sha256=serial["digest"]) == []

        for shards in (2, 4, 7):
            sharded = _run_session(shards, tmp_path=tmp_path, archive=True)
            root = sharded["archive_dir"]
            assert sorted(p.name for p in root.iterdir()) == names, shards
            for name in names:
                assert (root / name).read_bytes() == (
                    reference / name
                ).read_bytes(), (shards, name)

    def test_process_workers_write_identical_archives(self, tmp_path):
        inline = _run_session(2, processes=False, tmp_path=tmp_path, archive=True)
        forked = _run_session(2, processes=True, tmp_path=tmp_path, archive=True)
        names = sorted(p.name for p in inline["archive_dir"].iterdir())
        assert sorted(p.name for p in forked["archive_dir"].iterdir()) == names
        for name in names:
            assert (forked["archive_dir"] / name).read_bytes() == (
                inline["archive_dir"] / name
            ).read_bytes(), name


class TestProtocolEquivalence:
    """The batched window protocol is a wire optimization only: digests,
    telemetry, and stats must match the per-epoch 'unbatched' protocol."""

    def test_unbatched_twin_digest_identity(self, tmp_path):
        batched = _run_session(2, tmp_path=tmp_path, protocol="batched")
        unbatched = _run_session(
            2, tmp_path=tmp_path, protocol="unbatched", tag="-ub"
        )
        assert batched["events"] == unbatched["events"] > 0
        assert batched["digest"] == unbatched["digest"]
        assert batched["telemetry"] == unbatched["telemetry"]

    def test_window_epochs_do_not_change_the_digest(self, tmp_path):
        runs = [
            _run_session(2, tmp_path=tmp_path, window_epochs=w, tag=f"-w{w}")
            for w in (1, 3, 32)
        ]
        digests = {run["digest"] for run in runs}
        assert len(digests) == 1
        assert runs[0]["events"] > 0

    def test_batching_cuts_round_trips_and_pipe_bytes(self, tmp_path):
        """Fine epochs amplify the per-epoch constant factor; one window
        grant absorbs them all.  Pipe bytes need process workers (the
        inline pool never serializes)."""
        kwargs = dict(tmp_path=tmp_path, processes=True, epoch_seconds=1.0)
        batched = _run_session(2, protocol="batched", tag="-pb", **kwargs)
        unbatched = _run_session(2, protocol="unbatched", tag="-pu", **kwargs)
        assert batched["digest"] == unbatched["digest"]
        assert batched["round_trips"] * 5 <= unbatched["round_trips"]
        assert batched["pipe_bytes"] * 5 <= unbatched["pipe_bytes"]
        assert batched["pipe_bytes"] > 0

    def test_deferred_scheduler_forces_single_epoch_windows(self, tmp_path):
        """least-loaded-live routes on previous-epoch load digests, so
        batching would replay stale loads; the session must degrade to
        window=1 and still match the serial twin (covered digest-wise in
        TestDigestIdentity)."""
        session = ShardedClusterSession(
            _config(scheduler="least-loaded-live"),
            shards=2,
            epoch_seconds=5.0,
            window_epochs=32,
            trace_dir=str(tmp_path / "t"),
        )
        try:
            assert session.window_epochs == 1
        finally:
            session.close()


class TestClusterRun:
    @pytest.mark.parametrize("scheduler", ["round-robin", "warm-affinity"])
    def test_sharded_stats_equal_serial(self, scheduler):
        def build():
            cluster = Cluster(_config(nodes=4, scheduler=scheduler))
            cluster.submit(ARRIVALS)
            return cluster

        serial_cluster = build()
        serial = serial_cluster.run()
        serial_cluster.destroy()
        sharded = build().run(shards=2)
        assert serial.completed > 0
        assert sharded == serial  # dataclass equality: every field

    def test_deferred_scheduler_reroutes_in_session(self):
        cluster = Cluster(_config(nodes=4, scheduler="least-loaded-live"))
        cluster.submit(ARRIVALS)
        stats = cluster.run(shards=2)
        assert stats.completed == len(ARRIVALS)
        assert sum(stats.per_node_requests) == stats.completed


def _boom_manager():
    raise RuntimeError("manager factory boom")


class TestWorkerFailure:
    def test_worker_traceback_propagates(self, tmp_path):
        session = ShardedClusterSession(_config(nodes=2), _boom_manager, shards=2)
        try:
            with pytest.raises(ShardWorkerError, match="manager factory boom"):
                session.run_phase(ARRIVALS[:4], start=0.0, end=5.0)
        finally:
            session.close()


class TestClusterReplay:
    def _replay(
        self,
        shards,
        tmp_path,
        policy=None,
        trace_path=None,
        archive_dir=None,
        window=None,
    ):
        config = ClusterReplayConfig(
            nodes=4,
            shards=shards,
            epoch_seconds=5.0,
            scale_factor=6.0,
            warmup_seconds=10.0,
            warmup_scale_factor=6.0,
            duration_seconds=20.0,
            platform=PlatformConfig(capacity_bytes=512 * MIB),
            trace=True,
            event_trace_path=trace_path,
            archive_dir=archive_dir,
            archive_bucket_seconds=5.0,
            window=window,
        )
        return cluster_replay(policy or (lambda: Desiccant()), config)

    def test_sharded_replay_matches_serial(self, tmp_path):
        serial = self._replay(1, tmp_path)
        sharded = self._replay(2, tmp_path)
        assert serial.stats.completed > 0
        assert sharded.stats == serial.stats
        assert sharded.trace_events == serial.trace_events > 0
        assert sharded.trace_sha256 == serial.trace_sha256
        assert sharded.epochs == serial.epochs > 0

    def test_merged_trace_file_written(self, tmp_path):
        out = tmp_path / "merged.jsonl"
        result = self._replay(2, tmp_path, trace_path=out)
        assert result.trace_path == out
        lines = out.read_text().splitlines()
        assert len(lines) == result.trace_events > 0

    def test_archived_replay_composes_to_flat_digest(self, tmp_path):
        """The in-run archive's composed digest must equal the flat
        merged trace digest (cluster_replay asserts this itself via
        check_digest_composition; re-verify from the files here)."""
        result = self._replay(2, tmp_path, archive_dir=tmp_path / "arc")
        assert result.archive_events == result.trace_events > 0
        assert result.archive_sha256 == result.trace_sha256
        reader = ArchiveReader(result.archive_path)
        assert reader.verify(against_sha256=result.trace_sha256) == []

    def test_windowed_replay_reads_only_window_segments(self, tmp_path):
        window = TraceWindow(t_start=12.0, t_end=18.0, nodes=(0, 2))
        result = self._replay(
            2, tmp_path, archive_dir=tmp_path / "arc", window=window
        )
        assert result.window is not None
        assert 0 < result.window.events < result.trace_events
        # I/O witness: every segment touched lies inside the window.
        assert result.window.segments_read
        for name in result.window.segments_read:
            bucket = int(name.split("-")[1][1:])
            node = int(name.split("-")[2].split(".")[0][1:])
            assert 12.0 <= (bucket + 1) * 5.0 and bucket * 5.0 < 18.0, name
            assert node in (0, 2), name
