"""Unit tests for platform telemetry."""

import pytest

from repro.core import Desiccant
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.faas.telemetry import TelemetryRecorder, bucket_means, sparkline
from repro.sim import SAMPLE
from repro.workloads.registry import get_definition


def run_recorded(manager=None, count=8):
    platform = FaasPlatform(manager=manager)
    recorder = TelemetryRecorder(platform, interval=0.5)
    definition = get_definition("file-hash")
    platform.submit(
        [Request(arrival=i * 1.0, definition=definition) for i in range(count)]
    )
    platform.run()
    return platform, recorder


class TestRecorder:
    def test_samples_collected_at_interval(self):
        _platform, recorder = run_recorded()
        assert len(recorder.samples) >= 4
        times = [s.time for s in recorder.samples]
        assert times == sorted(times)
        assert all(b - a >= 0.5 - 1e-9 for a, b in zip(times, times[1:]))

    def test_invalid_interval_rejected(self):
        platform = FaasPlatform()
        with pytest.raises(ValueError):
            TelemetryRecorder(platform, interval=0.0)

    def test_counters_monotonic(self):
        _platform, recorder = run_recorded()
        cold = recorder.series("cold_boots")
        assert cold == sorted(cold)

    def test_threshold_recorded_for_desiccant(self):
        _platform, recorder = run_recorded(manager=Desiccant())
        thresholds = [s.activation_threshold for s in recorder.samples]
        assert all(t is not None for t in thresholds)

    def test_threshold_absent_for_vanilla(self):
        _platform, recorder = run_recorded()
        assert all(s.activation_threshold is None for s in recorder.samples)

    def test_detach_stops_sampling(self):
        platform, recorder = run_recorded()
        n = len(recorder.samples)
        recorder.detach()
        platform.submit(
            [Request(arrival=platform.now + 5.0, definition=get_definition("clock"))]
        )
        platform.run()
        assert len(recorder.samples) == n

    def test_csv_export(self, tmp_path):
        _platform, recorder = run_recorded()
        path = recorder.to_csv(tmp_path / "telemetry.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("time,frozen_bytes")
        assert len(lines) == len(recorder.samples) + 1

    def test_max_samples_keeps_only_the_tail(self):
        platform = FaasPlatform()
        recorder = TelemetryRecorder(platform, interval=0.5, max_samples=3)
        platform.submit(
            [Request(arrival=i * 1.0, definition=get_definition("clock")) for i in range(8)]
        )
        platform.run()
        assert len(recorder.samples) == 3
        # The ring keeps the newest samples, still time-ordered.
        times = [s.time for s in recorder.samples]
        assert times == sorted(times)
        assert times[-1] > 4.0

    def test_max_samples_still_publishes_every_sample(self):
        """The ring bounds the *recorder*; streaming consumers on the bus
        still see every snapshot."""
        platform = FaasPlatform()
        recorder = TelemetryRecorder(platform, interval=0.5, max_samples=2)
        seen = []
        platform.bus.subscribe(seen.append, kinds=(SAMPLE,))
        platform.submit(
            [Request(arrival=i * 1.0, definition=get_definition("clock")) for i in range(6)]
        )
        platform.run()
        assert len(recorder.samples) == 2
        assert len(seen) > 2

    def test_invalid_max_samples_rejected(self):
        platform = FaasPlatform()
        with pytest.raises(ValueError):
            TelemetryRecorder(platform, max_samples=0)

    def test_csv_export_with_ring(self, tmp_path):
        platform = FaasPlatform()
        recorder = TelemetryRecorder(platform, interval=0.5, max_samples=4)
        platform.submit(
            [Request(arrival=i * 1.0, definition=get_definition("clock")) for i in range(8)]
        )
        platform.run()
        path = recorder.to_csv(tmp_path / "ring.csv")
        lines = path.read_text().splitlines()
        assert len(lines) == len(recorder.samples) + 1 == 5

    def test_publishes_sample_events_on_the_bus(self):
        platform = FaasPlatform()
        recorder = TelemetryRecorder(platform, interval=0.5)
        seen = []
        platform.bus.subscribe(seen.append, kinds=(SAMPLE,))
        platform.submit(
            [Request(arrival=i * 1.0, definition=get_definition("clock")) for i in range(4)]
        )
        platform.run()
        assert len(seen) == len(recorder.samples) > 0
        assert all("used_bytes" in event.data for event in seen)


class TestBucketMeans:
    def test_width_covers_every_element_exactly_once(self):
        values = list(range(10))
        means = bucket_means(values, 3)
        # Buckets [0,3), [3,6), [6,10): exact partition, nothing skipped
        # or double-counted (the old stride-based downsampler did both).
        assert means == [1.0, 4.0, 7.5]
        assert sum(means[i] * n for i, n in enumerate((3, 3, 4))) == sum(values)

    def test_width_greater_than_length_passes_through(self):
        assert bucket_means([1.0, 2.0, 3.0], 10) == [1.0, 2.0, 3.0]

    def test_width_equal_to_length_passes_through(self):
        assert bucket_means([1.0, 2.0], 2) == [1.0, 2.0]

    def test_constant_series_stays_constant(self):
        assert bucket_means([7.0] * 100, 13) == [7.0] * 13

    def test_every_bucket_nonempty(self):
        # 7 values into 5 buckets: no bucket may be empty (the old
        # downsampler could produce empty slices and divide by zero).
        means = bucket_means(list(range(7)), 5)
        assert len(means) == 5

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            bucket_means([1.0], 0)


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert set(sparkline([5, 5, 5])) == {"."}

    def test_ramp_monotone(self):
        line = sparkline(list(range(10)))
        assert line[0] == " "
        assert line[-1] == "@"

    def test_downsamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40


class TestStreaming:
    def test_streamed_csv_matches_to_csv(self, tmp_path):
        platform = FaasPlatform()
        stream_path = tmp_path / "stream.csv"
        recorder = TelemetryRecorder(
            platform, interval=0.5, stream_csv=stream_path
        )
        definition = get_definition("file-hash")
        platform.submit(
            [Request(arrival=i * 1.0, definition=definition) for i in range(8)]
        )
        platform.run()
        recorder.flush()  # epoch-barrier hook: rows visible on disk now
        flushed = stream_path.read_text()
        assert len(flushed.splitlines()) == len(recorder.samples) + 1
        recorder.detach()
        # The streamed rows are the same bytes to_csv writes from the ring.
        exported = recorder.to_csv(tmp_path / "export.csv")
        assert stream_path.read_text() == exported.read_text()

    def test_archive_rows_match_streamed_csv(self, tmp_path):
        """archive_dir rolls the same sample rows into rows-kind
        segments: decompressed lines == streamed CSV body (no header,
        LF endings)."""
        from repro.trace.archive import ArchiveReader

        platform = FaasPlatform()
        stream_path = tmp_path / "stream.csv"
        recorder = TelemetryRecorder(
            platform,
            interval=0.5,
            stream_csv=stream_path,
            archive_dir=tmp_path / "arc",
            archive_bucket_seconds=2.0,
        )
        definition = get_definition("file-hash")
        platform.submit(
            [Request(arrival=i * 1.0, definition=definition) for i in range(8)]
        )
        platform.run()
        recorder.detach()

        reader = ArchiveReader(tmp_path / "arc")
        assert reader.kind == "rows"
        assert reader.verify() == []
        archived = list(reader.iter_window())
        body = stream_path.read_text().splitlines()[1:]  # drop header
        assert archived == body
        assert len({info.bucket for info in reader.segments()}) > 1

    def test_ring_bound_does_not_truncate_stream(self, tmp_path):
        platform = FaasPlatform()
        stream_path = tmp_path / "stream.csv"
        recorder = TelemetryRecorder(
            platform, interval=0.5, stream_csv=stream_path, max_samples=2
        )
        definition = get_definition("file-hash")
        platform.submit(
            [Request(arrival=i * 1.0, definition=definition) for i in range(8)]
        )
        platform.run()
        recorder.detach()
        assert len(recorder.samples) == 2  # ring kept only the tail
        assert len(stream_path.read_text().splitlines()) > 3  # stream kept all
