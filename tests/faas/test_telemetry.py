"""Unit tests for platform telemetry."""

import pytest

from repro.core import Desiccant
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.faas.telemetry import TelemetryRecorder, sparkline
from repro.workloads.registry import get_definition


def run_recorded(manager=None, count=8):
    platform = FaasPlatform(manager=manager)
    recorder = TelemetryRecorder(platform, interval=0.5)
    definition = get_definition("file-hash")
    platform.submit(
        [Request(arrival=i * 1.0, definition=definition) for i in range(count)]
    )
    platform.run()
    return platform, recorder


class TestRecorder:
    def test_samples_collected_at_interval(self):
        _platform, recorder = run_recorded()
        assert len(recorder.samples) >= 4
        times = [s.time for s in recorder.samples]
        assert times == sorted(times)
        assert all(b - a >= 0.5 - 1e-9 for a, b in zip(times, times[1:]))

    def test_invalid_interval_rejected(self):
        platform = FaasPlatform()
        with pytest.raises(ValueError):
            TelemetryRecorder(platform, interval=0.0)

    def test_counters_monotonic(self):
        _platform, recorder = run_recorded()
        cold = recorder.series("cold_boots")
        assert cold == sorted(cold)

    def test_threshold_recorded_for_desiccant(self):
        _platform, recorder = run_recorded(manager=Desiccant())
        thresholds = [s.activation_threshold for s in recorder.samples]
        assert all(t is not None for t in thresholds)

    def test_threshold_absent_for_vanilla(self):
        _platform, recorder = run_recorded()
        assert all(s.activation_threshold is None for s in recorder.samples)

    def test_detach_stops_sampling(self):
        platform, recorder = run_recorded()
        n = len(recorder.samples)
        recorder.detach()
        platform.submit(
            [Request(arrival=platform.now + 5.0, definition=get_definition("clock"))]
        )
        platform.run()
        assert len(recorder.samples) == n

    def test_csv_export(self, tmp_path):
        _platform, recorder = run_recorded()
        path = recorder.to_csv(tmp_path / "telemetry.csv")
        lines = path.read_text().splitlines()
        assert lines[0].startswith("time,frozen_bytes")
        assert len(lines) == len(recorder.samples) + 1


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_flat_series(self):
        assert set(sparkline([5, 5, 5])) == {"."}

    def test_ramp_monotone(self):
        line = sparkline(list(range(10)))
        assert line[0] == " "
        assert line[-1] == "@"

    def test_downsamples_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40
