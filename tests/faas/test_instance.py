"""Unit tests for instance lifecycle and freeze semantics."""

import pytest

from repro.faas.instance import FunctionInstance, InstanceState, runtime_for
from repro.mem.layout import MIB
from repro.runtime.cpython import CPythonRuntime
from repro.runtime.hotspot import HotSpotRuntime
from repro.runtime.v8 import V8Runtime
from repro.workloads.registry import get_definition, get_stage


@pytest.fixture
def java_spec():
    return get_definition("file-hash").stages[0]


@pytest.fixture
def instance(java_spec):
    inst = FunctionInstance(java_spec)
    inst.boot()
    return inst


class TestRuntimeFor:
    def test_java_gets_hotspot(self, java_spec):
        assert isinstance(runtime_for(java_spec, 256 * MIB), HotSpotRuntime)

    def test_javascript_gets_v8(self):
        spec = get_definition("fft").stages[0]
        assert isinstance(runtime_for(spec, 256 * MIB), V8Runtime)

    def test_unknown_language_rejected(self, java_spec):
        from dataclasses import replace

        bad = replace(java_spec, language="cobol")
        with pytest.raises(ValueError):
            runtime_for(bad, 256 * MIB)


class TestLifecycle:
    def test_invoke_then_freeze_then_thaw(self, instance):
        instance.invoke(now=1.0)
        assert instance.state is InstanceState.IDLE
        instance.freeze(now=1.5)
        assert instance.state is InstanceState.FROZEN
        assert instance.frozen_for(5.5) == pytest.approx(4.0)
        instance.thaw(now=5.5)
        assert instance.state is InstanceState.IDLE
        assert instance.frozen_for(6.0) == 0.0

    def test_invoke_while_frozen_rejected(self, instance):
        instance.invoke()
        instance.freeze()
        with pytest.raises(RuntimeError, match="frozen"):
            instance.invoke()

    def test_double_freeze_rejected(self, instance):
        instance.invoke()
        instance.freeze()
        with pytest.raises(RuntimeError):
            instance.freeze()

    def test_thaw_of_running_instance_rejected(self, instance):
        with pytest.raises(RuntimeError):
            instance.thaw()

    def test_destroy_is_idempotent_and_frees_memory(self, instance):
        phys = instance.runtime.space.physical
        instance.invoke()
        instance.destroy()
        instance.destroy()
        assert instance.state is InstanceState.DEAD
        assert phys.used_bytes == 0

    def test_invoke_after_destroy_rejected(self, instance):
        instance.destroy()
        with pytest.raises(RuntimeError, match="dead"):
            instance.invoke()


class TestReclaimGating:
    def test_reclaim_requires_frozen(self, instance):
        instance.invoke()
        with pytest.raises(RuntimeError, match="frozen"):
            instance.reclaim()

    def test_reclaim_reduces_memory_and_flags(self, instance):
        for _ in range(5):
            instance.invoke()
            instance.freeze()
            instance.thaw()
        instance.invoke()
        instance.freeze()
        before = instance.uss()
        outcome = instance.reclaim()
        assert outcome.uss_after < before
        assert instance.reclaim_count == 1
        instance.thaw()
        assert instance.reclaimed_this_freeze is False

    def test_frozen_state_survives_reclaim(self, instance):
        instance.invoke()
        instance.freeze()
        instance.reclaim()
        assert instance.state is InstanceState.FROZEN


def test_invocation_counts_accumulate(instance):
    for i in range(3):
        instance.invoke(now=float(i))
    assert instance.invocation_count == 3
    assert instance.last_used_at == 2.0
