"""Integration tests for the OpenWhisk-like platform."""

import pytest

from repro.core import Desiccant, EagerGcManager, VanillaManager
from repro.faas.instance import InstanceState
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.faas.lambda_platform import LambdaPlatform
from repro.mem.layout import GIB, MIB
from repro.workloads.registry import get_definition


def make_platform(**config_overrides) -> FaasPlatform:
    config = PlatformConfig(**config_overrides)
    return FaasPlatform(config=config)


def submit_and_run(platform, name, count, spacing=0.5, start=0.0):
    definition = get_definition(name)
    platform.submit(
        [
            Request(arrival=start + i * spacing, definition=definition)
            for i in range(count)
        ]
    )
    return platform.run()


class TestBasicRouting:
    def test_first_request_cold_boots(self):
        platform = make_platform()
        outcomes = submit_and_run(platform, "clock", 1)
        assert len(outcomes) == 1
        assert outcomes[0].cold_boots == 1
        assert platform.cold_boots == 1

    def test_repeat_requests_reuse_frozen_instance(self):
        platform = make_platform()
        outcomes = submit_and_run(platform, "clock", 5)
        assert platform.cold_boots == 1
        assert platform.warm_starts == 4
        assert all(o.cold_boots == 0 for o in outcomes[1:])

    def test_cold_boot_latency_dominates(self):
        platform = make_platform()
        outcomes = submit_and_run(platform, "file-hash", 3)
        assert outcomes[0].latency > outcomes[1].latency

    def test_instance_frozen_after_completion(self):
        platform = make_platform()
        submit_and_run(platform, "clock", 1)
        instances = platform.all_instances()
        assert len(instances) == 1
        assert instances[0].state is InstanceState.FROZEN

    def test_chain_runs_every_stage(self):
        platform = make_platform()
        outcomes = submit_and_run(platform, "mapreduce", 1)
        assert outcomes[0].cold_boots == 2  # one per stage
        assert len(platform.all_instances()) == 2

    def test_chain_handoff_freed_after_consumption(self):
        platform = make_platform()
        submit_and_run(platform, "mapreduce", 2)
        mapper = next(
            i for i in platform.all_instances() if i.spec.name == "mapreduce.map"
        )
        # After the reducer consumed, only the mapper's cached state remains.
        assert mapper.runtime.live_bytes() < 3 * MIB

    def test_concurrent_requests_spawn_multiple_instances(self):
        platform = make_platform()
        definition = get_definition("file-hash")
        platform.submit(
            [Request(arrival=0.0, definition=definition) for _ in range(4)]
        )
        platform.run()
        assert platform.cold_boots == 4


class TestMemoryPressure:
    def test_eviction_under_tight_cache(self):
        # Launching needs a full 256 MiB budget free; with a 320 MiB cache,
        # ~64 MiB of frozen instances forces evictions.
        platform = make_platform(capacity_bytes=320 * MIB)
        for name in ("sort", "file-hash", "image-resize", "fft", "matrix"):
            submit_and_run(platform, name, 1, start=platform.now + 1.0)
        assert platform.evictions > 0

    def test_eviction_prefers_lru(self):
        platform = make_platform(capacity_bytes=2 * GIB)
        submit_and_run(platform, "sort", 1)
        first = platform.all_instances()[0]
        platform.now += 100.0
        submit_and_run(platform, "fft", 1, start=platform.now)
        victim = platform._eviction_victim()
        assert victim is first

    def test_frozen_bytes_tracks_uss(self):
        platform = make_platform()
        submit_and_run(platform, "sort", 1)
        assert platform.frozen_bytes() == sum(
            i.uss() for i in platform.frozen_instances()
        )

    def test_queueing_under_cpu_saturation(self):
        platform = make_platform(cpus=0.28)  # two concurrent slots
        definition = get_definition("file-hash")
        platform.submit(
            [Request(arrival=0.0, definition=definition) for _ in range(6)]
        )
        outcomes = platform.run()
        assert platform.max_concurrency == 2
        assert any(o.queue_seconds > 0 for o in outcomes)


class TestManagers:
    def test_eager_manager_charges_gc_cpu(self):
        platform = FaasPlatform(manager=EagerGcManager())
        submit_and_run(platform, "sort", 3)
        assert platform.cpu.busy.get("eager_gc", 0) > 0

    def test_desiccant_activates_under_pressure(self):
        from repro.core import ActivationController

        desiccant = Desiccant(activation=ActivationController(floor=0.1, ceiling=0.1))
        desiccant.config.freeze_timeout_seconds = 0.1
        platform = FaasPlatform(
            config=PlatformConfig(capacity_bytes=512 * MIB),
            manager=desiccant,
        )
        for name in ("sort", "file-hash", "fft"):
            submit_and_run(platform, name, 2, spacing=2.0, start=platform.now + 5.0)
        assert len(desiccant.reports) > 0
        assert platform.cpu.busy.get("reclaim", 0) > 0

    def test_vanilla_manager_never_reclaims(self):
        platform = FaasPlatform(manager=VanillaManager())
        submit_and_run(platform, "sort", 3)
        assert platform.cpu.busy.get("reclaim", 0) == 0

    def test_desiccant_profiles_dropped_on_eviction(self):
        desiccant = Desiccant()
        platform = FaasPlatform(manager=desiccant)
        submit_and_run(platform, "sort", 1)
        instance = platform.all_instances()[0]
        desiccant.profiles.record(
            instance.id, instance.spec.name, __import__(
                "repro.core.profiles", fromlist=["ReclaimProfile"]
            ).ReclaimProfile(1, 0.01),
        )
        platform.evict(instance)
        assert not desiccant.profiles.has_history(instance.id)
        assert desiccant.activation.threshold == desiccant.activation.floor


class TestLambdaPlatform:
    def test_lambda_never_shares_libraries(self):
        platform = LambdaPlatform()
        submit_and_run(platform, "clock", 1)
        instance = platform.all_instances()[0]
        from repro.mem.accounting import measure

        report = measure(instance.runtime.space)
        assert report.shared_clean == 0  # all library pages private

    def test_openwhisk_shares_libraries(self):
        platform = make_platform()
        submit_and_run(platform, "clock", 1)
        instance = platform.all_instances()[0]
        from repro.mem.accounting import measure

        report = measure(instance.runtime.space)
        assert report.shared_clean > 0


def test_reset_metrics_preserves_instances():
    platform = make_platform()
    submit_and_run(platform, "clock", 3)
    platform.reset_metrics()
    assert platform.cold_boots == 0
    assert platform.outcomes == []
    assert len(platform.all_instances()) == 1
