"""Tests for the §2.1/§5.2 idle policies and the heartbeat probe."""

import pytest

from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.faas.probe import heartbeat_windows, probe_idle_semantics
from repro.workloads.registry import get_definition


def run_two_requests(idle_policy, gap=20.0, name="web-server"):
    platform = FaasPlatform(config=PlatformConfig(idle_policy=idle_policy))
    definition = get_definition(name)
    platform.submit(
        [
            Request(arrival=0.0, definition=definition),
            Request(arrival=gap, definition=definition),
        ]
    )
    platform.run()
    return platform


class TestIdlePolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            FaasPlatform(config=PlatformConfig(idle_policy="hibernate"))

    def test_freeze_reuses_instance(self):
        platform = run_two_requests("freeze")
        assert platform.cold_boots == 1
        assert platform.warm_starts == 1

    def test_destroy_cold_boots_every_request(self):
        platform = run_two_requests("destroy")
        assert platform.cold_boots == 2
        assert platform.warm_starts == 0

    def test_keep_warm_reuses_without_thaw(self):
        platform = run_two_requests("keep-warm")
        assert platform.cold_boots == 1
        assert platform.warm_starts == 1
        # No freeze ever happened.
        instance = platform.all_instances()[0]
        assert all(
            state.value != "frozen" for _t, state in instance.transitions
        )

    def test_keep_warm_burns_background_cpu(self):
        frozen = run_two_requests("freeze", gap=60.0)
        warm = run_two_requests("keep-warm", gap=60.0)
        assert warm.cpu.busy.get("idle_background", 0.0) > 0.0
        assert frozen.cpu.busy.get("idle_background", 0.0) == 0.0

    def test_keep_warm_runs_idle_gc_after_quiet_period(self):
        platform = run_two_requests("keep-warm", gap=60.0)
        instance = platform.all_instances()[0]
        assert instance.runtime.full_gc_count >= 1

    def test_keep_warm_memory_similar_to_vanilla_freeze(self):
        """§5.2: not freezing yields similar memory results to vanilla --
        the idle GC does not release committed free pages either."""
        frozen = run_two_requests("freeze", gap=2.0, name="fft")
        warm = run_two_requests("keep-warm", gap=2.0, name="fft")
        uss_frozen = sum(i.uss() for i in frozen.all_instances())
        uss_warm = sum(i.uss() for i in warm.all_instances())
        assert uss_warm > 0.6 * uss_frozen


class TestHeartbeatProbe:
    def test_freeze_platform_classified(self):
        report = probe_idle_semantics(PlatformConfig(idle_policy="freeze"))
        assert report.classification == "freeze"
        assert report.same_instance_resumed
        # Heartbeats: a window per active period, gap in between.
        assert len(report.windows) >= 2

    def test_destroy_platform_classified(self):
        report = probe_idle_semantics(PlatformConfig(idle_policy="destroy"))
        assert report.classification == "destroy"

    def test_keep_running_platform_classified(self):
        report = probe_idle_semantics(PlatformConfig(idle_policy="keep-warm"))
        assert report.classification == "keep-running"
        assert len(report.windows) == 1
        assert report.windows[0].end is None  # heartbeats never stopped

    def test_heartbeat_windows_from_transitions(self):
        platform = run_two_requests("freeze", gap=10.0)
        instance = platform.all_instances()[0]
        windows = heartbeat_windows(instance)
        assert len(windows) == 2
        first, second = windows
        assert first.end is not None and first.end <= second.start
        assert second.end is None or second.end > second.start
