"""Oracle wiring tests: registration, cadence, env gating, stateful laws,
and the acceptance mutation test (a deliberately injected accounting bug
must be caught, shrunk, and replayable from the written case file).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.check import InvariantOracle, OracleConfig, Violation
from repro.check.fuzz import fuzz_seed, generate_ops, replay_case, run_ops
from repro.check.oracle import maybe_attach_oracle
from repro.faas.instance import FunctionInstance
from repro.faas.platform import FaasPlatform, PlatformConfig, Request
from repro.mem.layout import MIB, PAGE_SIZE
from repro.mem.physical import PhysicalMemory, SwapDevice
from repro.mem.vmm import VirtualAddressSpace
from repro.workloads.model import FunctionSpec
from repro.workloads.registry import get_definition

SPEC = FunctionSpec(
    name="orc-py",
    language="python",
    description="oracle-test function",
    base_exec_seconds=0.004,
    ephemeral_bytes=192 * 1024,
    frame_bytes=96 * 1024,
    persistent_bytes=64 * 1024,
    object_size=16 * 1024,
    code_size=64 * 1024,
    warm_units=2,
)


class TestOracleConfig:
    def test_rejects_unknown_cadence(self):
        with pytest.raises(ValueError):
            OracleConfig(cadence="sometimes")

    def test_rejects_non_positive_every(self):
        with pytest.raises(ValueError):
            OracleConfig(every=0)

    def test_sampling_always_checks_first_occasion(self):
        oracle = InvariantOracle(OracleConfig(cadence="end", every=3))
        for _ in range(7):
            oracle.maybe_check()
        # Occasions 1, 4, 7 sweep under 1-in-3 sampling.
        assert oracle.checks_run == 3


class TestEnvGating:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        platform = FaasPlatform(config=PlatformConfig())
        assert platform.oracle is None

    def test_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "0")
        platform = FaasPlatform(config=PlatformConfig())
        assert platform.oracle is None

    def test_enabled_with_tuning(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        monkeypatch.setenv("REPRO_CHECK_CADENCE", "step")
        monkeypatch.setenv("REPRO_CHECK_EVERY", "2")
        platform = FaasPlatform(config=PlatformConfig())
        assert platform.oracle is not None
        assert platform.oracle.config.cadence == "step"
        assert platform.oracle.config.every == 2

    def test_platform_run_sweeps_continuously(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        monkeypatch.setenv("REPRO_CHECK_CADENCE", "step")
        monkeypatch.setenv("REPRO_CHECK_EVERY", "1")
        platform = FaasPlatform(config=PlatformConfig())
        definition = get_definition("clock")
        platform.submit(
            [Request(arrival=i * 0.5, definition=definition) for i in range(3)]
        )
        platform.run()
        assert platform.oracle.checks_run > 0
        assert platform.oracle.last_violation is None
        platform.oracle.finish()


class TestStatefulLaws:
    def make_instance(self, oracle: InvariantOracle) -> FunctionInstance:
        instance = FunctionInstance(SPEC, memory_budget=32 * MIB)
        instance.boot(0.0)
        instance.invoke(0.1)
        oracle.attach_world(instances=[instance])
        return instance

    def test_frozen_instance_faulting_is_caught(self):
        oracle = InvariantOracle(OracleConfig(cadence="end"))
        instance = self.make_instance(oracle)
        instance.freeze(1.0)
        oracle.check_now()
        # A frozen container's threads are stopped: any fault is a bug.
        rogue = instance.runtime.space.mmap(PAGE_SIZE, name="[rogue]")
        instance.runtime.space.touch(rogue.start, PAGE_SIZE, write=True)
        with pytest.raises(Violation) as caught:
            oracle.check_now()
        assert caught.value.invariant == "frozen-no-fault"
        assert oracle.last_violation is caught.value

    def test_reclaim_rebaselines_frozen_faults(self):
        oracle = InvariantOracle(OracleConfig(cadence="end"))
        instance = self.make_instance(oracle)
        instance.freeze(1.0)
        oracle.check_now()
        instance.reclaim()  # reclaim faults by design; must not trip the law
        oracle.check_now()
        instance.thaw(2.0)
        instance.invoke(2.1)  # faults after thaw are fine too
        oracle.finish()

    def test_thaw_refreeze_between_sweeps_rebaselines(self):
        """A thaw -> fault -> freeze cycle wholly between two sweeps must
        not be misread as faulting while frozen (the transition log tells
        the oracle its baseline went stale)."""
        oracle = InvariantOracle(OracleConfig(cadence="end"))
        instance = self.make_instance(oracle)
        instance.freeze(1.0)
        oracle.check_now()
        instance.thaw(2.0)
        instance.invoke(2.1)  # faults while running
        instance.freeze(3.0)
        oracle.check_now()  # frozen again at the sweep; must re-baseline
        # ...and with the fresh baseline, *new* frozen faults still trip.
        rogue = instance.runtime.space.mmap(PAGE_SIZE, name="[rogue]")
        instance.runtime.space.touch(rogue.start, PAGE_SIZE, write=True)
        with pytest.raises(Violation) as caught:
            oracle.check_now()
        assert caught.value.invariant == "frozen-no-fault"

    def test_reclaim_promotion_overhead_is_tolerated(self):
        """Reclaiming a young persistent cohort promotes it into a fresh
        old chunk: header page + promoted data materialize while the
        vacated semispace pages are released, so USS can end one page up.
        That exact overhead is reported as ``evacuated_bytes`` and must
        pass the law; anything beyond it must still trip."""
        js_spec = FunctionSpec(
            name="orc-js",
            language="javascript",
            description="oracle-test js function",
            base_exec_seconds=0.004,
            ephemeral_bytes=256 * 1024,
            frame_bytes=96 * 1024,
            persistent_bytes=96 * 1024,
            object_size=16 * 1024,
            code_size=64 * 1024,
            warm_units=2,
        )
        oracle = InvariantOracle(OracleConfig(cadence="end"))
        instance = FunctionInstance(js_spec, memory_budget=64 * MIB, seed=7)
        instance.boot(0.0)
        oracle.attach_world(instances=[instance])
        instance.runtime.alloc_cohort(2, 5120, scope="persistent")
        instance.freeze(1.0)
        instance.reclaim()
        outcome = instance.last_reclaim
        grown = outcome.uss_after - outcome.uss_before
        assert grown > 0  # the scenario really does grow USS
        assert outcome.evacuated_bytes >= grown
        oracle.check_now()  # tolerated: growth is all evacuation
        # With the evacuation unreported the same growth is a leak.
        instance.last_reclaim = dataclasses.replace(outcome, evacuated_bytes=0)
        with pytest.raises(Violation) as caught:
            oracle.check_now()
        assert caught.value.invariant == "reclaim-uss"

    def test_swap_parity_violation(self):
        oracle = InvariantOracle(OracleConfig(cadence="end"))
        physical = PhysicalMemory()
        space = VirtualAddressSpace("[orc]", physical)
        mapping = space.mmap(4 * PAGE_SIZE)
        space.touch(mapping.start, 4 * PAGE_SIZE, write=True)
        space.swap_out_range(mapping.start, 2 * PAGE_SIZE)
        oracle.attach_world(spaces=[space], physical=physical)
        oracle.check_now()
        # Pretend one swap-in predates the oracle: parity now claims a
        # swap-in happened with no matching major fault.
        oracle._swap_in_baselines[id(physical)] -= 1
        with pytest.raises(Violation) as caught:
            oracle.check_now()
        assert caught.value.invariant == "swap-major-parity"


# ------------------------------------------------------------ mutation test


def _buggy_discard(self, n=1):
    """The pre-fix bug: a discarded swap page counted as a swap-in."""
    if n > self.pages:
        raise ValueError(f"discard of {n} pages but only {self.pages} swapped")
    self.pages -= n
    self.total_swap_ins += n


class TestMutationCatching:
    """Deliberately re-inject known accounting bugs; the oracle must catch
    them through the fuzzer, shrink the schedule, and write a case file
    that reproduces the violation on replay."""

    def test_discard_counted_as_swap_in_is_caught(self, monkeypatch, tmp_path):
        monkeypatch.setattr(SwapDevice, "discard", _buggy_discard)
        report = fuzz_seed(0, 250, check_every=1, case_dir=str(tmp_path))
        assert not report.ok
        assert report.failure.kind == "swap-major-parity"
        # Shrinking kept the failure while dropping most of the schedule.
        assert report.shrunk_ops
        assert len(report.shrunk_ops) < report.ops_executed
        assert report.case_path is not None
        # The written case replays to the same violation while the bug is in.
        failure, header = replay_case(report.case_path)
        assert header["kind"] == "swap-major-parity"
        assert failure is not None
        assert failure.kind == "swap-major-parity"
        # With the bug removed the very same case is clean: the case file
        # pins the bug, not the schedule.
        monkeypatch.undo()
        failure, _ = replay_case(report.case_path)
        assert failure is None

    def test_anon_frame_leak_is_caught(self, monkeypatch):
        original = PhysicalMemory.free_anon

        def leaky(self, n=1):
            original(self, max(0, n - 1))

        monkeypatch.setattr(PhysicalMemory, "free_anon", leaky)
        failure, _ = run_ops(generate_ops(0, 200), check_every=1)
        assert failure is not None
        assert failure.kind == "frames-anon"

    def test_same_seed_clean_without_mutation(self):
        failure, oracle = run_ops(generate_ops(0, 250), check_every=1)
        assert failure is None
        assert oracle.checks_run > 0
