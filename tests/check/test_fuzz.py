"""Fuzz harness tests: deterministic generation, sound shrinking, case
file round-trips, seed specs, and the CLI face."""

from __future__ import annotations

import json
from pathlib import Path

from repro.check.fuzz import (
    CASE_FORMAT,
    FuzzFailure,
    generate_ops,
    parse_seed_spec,
    read_case,
    replay_case,
    run_fuzz,
    run_ops,
    write_case,
)
from repro.check.shrink import ddmin, shrink_ops
from repro.cli import main


class TestGeneration:
    def test_same_seed_same_schedule(self):
        assert generate_ops(5, 400) == generate_ops(5, 400)

    def test_different_seeds_differ(self):
        assert generate_ops(1, 400) != generate_ops(2, 400)

    def test_ops_are_json_scalars(self):
        ops = generate_ops(3, 400)
        assert ops == json.loads(json.dumps(ops))

    def test_references_are_indices(self):
        ops = generate_ops(7, 600)
        mmaps = boots = 0
        for op in ops:
            if "region" in op:
                assert 0 <= op["region"] < mmaps
            if "slot" in op:
                assert 0 <= op["slot"] < boots
            mmaps += op["op"] in ("mmap", "mmap_file")
            boots += op["op"] == "boot"


class TestRunOps:
    def test_clean_seed_runs_all_ops(self):
        ops = generate_ops(0, 300)
        failure, oracle = run_ops(ops, check_every=1)
        assert failure is None
        # One sweep per op plus the final finish() sweep.
        assert oracle.checks_run == len(ops) + 1

    def test_check_every_samples_sweeps(self):
        ops = generate_ops(0, 300)
        _, dense = run_ops(ops, check_every=1)
        _, sparse = run_ops(ops, check_every=10)
        assert sparse.checks_run < dense.checks_run
        assert sparse.checks_run >= len(ops) // 10

    def test_any_subsequence_is_executable(self):
        # Skip-on-invalid semantics: dropping arbitrary ops (here: every
        # third) must never crash -- that is what makes shrinking sound.
        ops = [op for i, op in enumerate(generate_ops(9, 300)) if i % 3]
        failure, _ = run_ops(ops, check_every=25)
        assert failure is None

    def test_cohort_ops_are_generated_and_run_clean(self):
        # The alloc_cohort op must actually appear in schedules (it is
        # weighted into the mix) and survive the oracle sweeps.
        found = []
        for seed in range(8):
            ops = generate_ops(seed, 400)
            cohorts = [op for op in ops if op["op"] == "alloc_cohort"]
            if not cohorts:
                continue
            found.extend(cohorts)
            failure, _ = run_ops(ops, check_every=50)
            assert failure is None, failure
        assert found, "no alloc_cohort ops in 8 seeds"
        for op in found:
            assert op["count"] >= 2 and op["unit"] > 0
            assert op["scope"] in ("ephemeral", "persistent", "weak")


class TestShrink:
    def test_ddmin_finds_minimal_pair(self):
        def fails(items):
            return 3 in items and 11 in items

        assert sorted(ddmin(list(range(20)), fails)) == [3, 11]

    def test_shrink_ops_is_one_minimal(self):
        def fails(items):
            return sum(items) >= 30

        result = shrink_ops([5] * 12, fails)
        assert sum(result) >= 30
        # 1-minimal: removing any single element breaks the predicate.
        for i in range(len(result)):
            assert not fails(result[:i] + result[i + 1:])

    def test_budget_bounds_predicate_calls(self):
        calls = []

        def fails(items):
            calls.append(1)
            return True

        ddmin(list(range(256)), fails, max_runs=20)
        assert len(calls) <= 20


class TestSnapshots:
    """Mid-run world snapshots and the suffix-only shrink they enable."""

    def test_clean_run_logs_snapshots_at_the_cadence(self):
        ops = generate_ops(0, 300)
        log = []
        failure, _ = run_ops(ops, check_every=25, checkpoint_every=50,
                             snapshot_log=log)
        assert failure is None
        assert [index for index, _ in log] == [
            n for n in range(50, len(ops) + 1, 50)
        ]
        assert all(isinstance(blob, bytes) and blob for _, blob in log)

    def test_resume_from_snapshot_finishes_clean(self):
        ops = generate_ops(0, 300)
        log = []
        run_ops(ops, check_every=25, checkpoint_every=100, snapshot_log=log)
        snap_index, blob = log[0]
        failure, _ = run_ops(ops[snap_index:], check_every=25, resume=blob,
                             start_index=snap_index)
        assert failure is None

    def test_resumed_failure_index_names_the_full_schedule_position(self):
        clean = generate_ops(0, 120)
        assert len(clean) >= 20
        ops = clean + [{"op": "explode"}]
        log = []
        failure, _ = run_ops(ops, check_every=10, checkpoint_every=20,
                             snapshot_log=log)
        assert failure is not None
        assert failure.kind == "crash:AttributeError"
        assert failure.op_index == len(clean)
        snap_index, blob = log[-1]
        resumed, _ = run_ops(ops[snap_index:], check_every=10, resume=blob,
                             start_index=snap_index)
        # The reported index is absolute, not suffix-relative.
        assert resumed.op_index == failure.op_index

    def test_suffix_shrink_restarts_from_the_last_snapshot(self, monkeypatch,
                                                           tmp_path):
        import repro.check.fuzz as fuzz_mod
        from repro.check.fuzz import fuzz_seed

        clean = generate_ops(0, 120)
        planted = clean + [{"op": "explode"}]
        monkeypatch.setattr(fuzz_mod, "generate_ops",
                            lambda seed, n_ops: planted)
        report = fuzz_seed(0, len(planted), check_every=10,
                           case_dir=str(tmp_path), checkpoint_every=20)
        assert not report.ok
        assert report.failure.kind == "crash:AttributeError"
        # The shrinker restarted from the last snapshot before the
        # failure rather than replaying the prefix for every candidate.
        assert report.snapshot_index == (len(clean) // 20) * 20
        # ...and the written case still reproduces standalone.
        replayed, _ = replay_case(Path(report.case_path))
        assert replayed is not None
        assert replayed.kind == "crash:AttributeError"


class TestCaseFiles:
    def test_round_trip(self, tmp_path):
        ops = generate_ops(2, 50)
        failure = FuzzFailure(kind="frames-anon", detail="d", op_index=7)
        path = tmp_path / "case.jsonl"
        write_case(path, 2, 50, 4, failure, ops)
        header, read_ops = read_case(path)
        assert header["format"] == CASE_FORMAT
        assert header["kind"] == "frames-anon"
        assert header["check_every"] == 4
        assert read_ops == ops

    def test_replay_clean_case(self, tmp_path):
        ops = generate_ops(0, 100)
        failure = FuzzFailure(kind="none", detail="-", op_index=0)
        path = tmp_path / "clean.jsonl"
        write_case(path, 0, 100, 5, failure, ops)
        replayed, header = replay_case(path)
        assert replayed is None
        assert header["seed"] == 0

    def test_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "not-a-case.jsonl"
        path.write_text('{"format": "something-else"}\n')
        try:
            read_case(path)
        except ValueError as exc:
            assert "not a" in str(exc)
        else:
            raise AssertionError("expected ValueError")


class TestSeedSpec:
    def test_single(self):
        assert parse_seed_spec("7") == [7]

    def test_range_is_inclusive(self):
        assert parse_seed_spec("0..3") == [0, 1, 2, 3]

    def test_list_and_mixed(self):
        assert parse_seed_spec("1,5,9") == [1, 5, 9]
        assert parse_seed_spec("0..2,9") == [0, 1, 2, 9]

    def test_empty_rejected(self):
        try:
            parse_seed_spec(" ")
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")


class TestFanOut:
    def test_serial_matches_requested_seeds(self):
        results = run_fuzz([0, 1], 150, check_every=25)
        assert [r["seed"] for r in results] == [0, 1]
        assert all(r["ok"] for r in results)


class TestCli:
    def test_fuzz_clean_exit_zero(self, capsys):
        assert main(["fuzz", "--seed", "0..1", "--ops", "150",
                     "--check-every", "10"]) == 0
        out = capsys.readouterr().out
        assert "2 seeds x 150 ops" in out
        assert "0 failing" in out

    def test_fuzz_accepts_checkpoint_cadence(self, capsys):
        assert main(["fuzz", "--seed", "0", "--ops", "150",
                     "--check-every", "10", "--checkpoint-every", "50"]) == 0
        assert "0 failing" in capsys.readouterr().out

    def test_replay_clean_case_exit_zero(self, tmp_path, capsys):
        ops = generate_ops(0, 80)
        failure = FuzzFailure(kind="none", detail="-", op_index=0)
        path = tmp_path / "clean.jsonl"
        write_case(path, 0, 80, 5, failure, ops)
        assert main(["fuzz", "--replay", str(path)]) == 0
        assert "no violation" in capsys.readouterr().out

    def test_benchmarks_face_delegates(self, capsys):
        from benchmarks.fuzz_smoke import main as smoke_main

        assert smoke_main(["--seed", "0", "--ops", "100",
                           "--check-every", "25"]) == 0
        assert "1 seeds x 100 ops" in capsys.readouterr().out
