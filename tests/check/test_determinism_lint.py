"""Determinism lint: the simulation must be replayable bit-for-bit.

AST-scans every module under ``src/repro`` and bans the ambient
nondeterminism sources:

* the global ``random`` module functions (``random.random()``,
  ``from random import ...``) -- all randomness flows through seeded
  ``random.Random`` instances (:class:`repro.sim.rng.RngStream`);
* wall-clock reads (``time.time()`` and friends) -- simulated time comes
  from the kernel clock (``analysis/bench.py`` is exempt: it *measures*
  wall time, which is presentation, not simulation);
* builtin ``hash()`` -- salted per process; stable hashing goes through
  ``zlib.crc32`` (``hash_stable``);
* iterating directly over set displays/constructors -- set order is
  insertion-history dependent; sort first.
* bare ``gzip.open`` / ``gzip.GzipFile`` writes -- the default gzip
  header embeds the wall-clock mtime, so compressed output differs
  between runs; archive code goes through the pinned helpers in
  ``repro.trace.archive`` (``mtime=0``, no filename, fixed level),
  which is the one file exempt from this rule.
* ad-hoc ``pickle`` calls -- simulation state serialized outside
  ``repro.sim.checkpoint`` would bypass the schema version, content
  digest and environment fingerprint that make a restore trustworthy
  (``sim/wire.py`` is the other sanctioned site: it frames the shard
  IPC protocol, whose blobs never touch disk, and ``memo/effects.py``
  pickles in-memory effect deltas that are re-derived, never restored
  across processes).
* hidden memoization state -- ``functools.lru_cache``/``functools.cache``
  on an instance method keeps the bound instances alive *and* makes a
  computation's cost depend on call history invisible to the effect
  cache's fingerprints; module-level mutable cache containers carry
  state across legs that a replayed run cannot see.  All cross-call
  caching lives in ``repro/memo/`` (content-addressed, drained and
  reset at leg boundaries) or in self-invalidating per-object caches
  keyed on version counters.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Reading the wall clock (never allowed in simulation code).
WALL_CLOCK = {"time", "monotonic", "perf_counter", "time_ns", "monotonic_ns",
              "perf_counter_ns", "process_time"}

#: Modules allowed to read the wall clock: the benchmark harness reports
#: wall/CPU timings *about* the (still deterministic) simulation, and
#: ``procenv`` owns the sanctioned :func:`repro.procenv.wall_clock`
#: helper that shard workers and the replay coordinator use for
#: process-level busy/overhead accounting (no simulation decision may
#: depend on it).
WALL_CLOCK_EXEMPT = {"analysis/bench.py", "procenv.py"}

#: The one module allowed to touch gzip directly: it owns the pinned
#: deterministic writers everything else must use.
GZIP_EXEMPT = {"trace/archive.py"}

#: Modules allowed to call pickle directly: ``sim/checkpoint.py`` wraps
#: every durable dump in the versioned, digest-guarded checkpoint
#: format, ``sim/wire.py`` frames the in-memory shard IPC protocol, and
#: ``memo/effects.py`` captures in-memory effect deltas (process-local,
#: digest-gated, never durable).  Everything else must go through them.
PICKLE_EXEMPT = {"sim/checkpoint.py", "sim/wire.py", "memo/effects.py"}

#: Modules on the per-event emission path, where ``json.dumps`` is
#: banned outright: line encoding must flow through
#: ``repro.trace.encode`` so the compiled fast path and the generic
#: reference twin stay the only two serializers whose bytes the digest
#: gates compare.  An ad-hoc ``json.dumps`` here would bypass that
#: differential pairing silently.
JSON_EVENT_HOT_PATH = {"sim/trace.py", "sim/bus.py", "sim/shard.py"}

#: The directory whose modules own cross-call caching (bounded,
#: content-addressed, reset at leg boundaries).  Module-level mutable
#: cache containers anywhere else are hidden replay state.
CACHE_HOME = "memo/"

#: Decorator names that memoize on the function object itself.
_MEMO_DECORATORS = {"lru_cache", "cache"}

#: Value shapes that make a module-level ``*cache*`` binding a mutable
#: container: displays/comprehensions, or constructor calls.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter",
}


def _iter_sources():
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        yield rel, ast.parse(path.read_text(), filename=rel)


def _is_memo_decorator(node: ast.expr) -> bool:
    """``@lru_cache``/``@cache``, bare or called, plain or dotted."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr in _MEMO_DECORATORS
    return isinstance(node, ast.Name) and node.id in _MEMO_DECORATORS


def _is_mutable_container(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                         ast.ListComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _lint_caches(rel: str, tree: ast.Module):
    """The memoization rules (skipped inside the sanctioned cache home)."""
    if rel.startswith(CACHE_HOME):
        return
    for klass in ast.walk(tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        for member in klass.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = member.args.posonlyargs + member.args.args
            if not args or args[0].arg != "self":
                continue
            for decorator in member.decorator_list:
                if _is_memo_decorator(decorator):
                    yield (
                        f"{rel}:{member.lineno}: lru_cache on instance method "
                        f"{klass.name}.{member.name} (keeps instances alive; "
                        "hidden call-history state -- use repro/memo/ or a "
                        "version-keyed per-object cache)"
                    )
    for statement in tree.body:
        targets = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
            value = statement.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and "cache" in target.id.lower()
                and _is_mutable_container(value)
            ):
                yield (
                    f"{rel}:{statement.lineno}: module-level mutable cache "
                    f"{target.id} (hidden replay state; cross-call caching "
                    "belongs in repro/memo/)"
                )


def _lint(rel: str, tree: ast.AST):
    yield from _lint_caches(rel, tree)
    for node in ast.walk(tree):
        where = f"{rel}:{getattr(node, 'lineno', '?')}"
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield f"{where}: 'from random import ...' (use random.Random/RngStream)"
            if node.module == "time":
                yield f"{where}: 'from time import ...' (use the simulated clock)"
        elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            base, attr = node.value.id, node.attr
            if base == "random" and attr != "Random":
                yield (
                    f"{where}: random.{attr} (module-global RNG; "
                    "use a seeded random.Random / RngStream)"
                )
            if base == "time" and attr in WALL_CLOCK:
                if rel not in WALL_CLOCK_EXEMPT:
                    yield f"{where}: time.{attr} (use the simulated clock)"
            if base == "gzip" and attr in ("open", "GzipFile"):
                if rel not in GZIP_EXEMPT:
                    yield (
                        f"{where}: gzip.{attr} (header embeds wall-clock "
                        "mtime; use repro.trace.archive helpers)"
                    )
            if base == "json" and attr in ("dump", "dumps"):
                if rel in JSON_EVENT_HOT_PATH:
                    yield (
                        f"{where}: json.{attr} on the event hot path "
                        "(line encoding belongs in repro.trace.encode, "
                        "paired with its generic reference twin)"
                    )
            if base == "pickle" and attr in ("dump", "dumps", "load", "loads",
                                             "Pickler", "Unpickler"):
                if rel not in PICKLE_EXEMPT:
                    yield (
                        f"{where}: pickle.{attr} (unversioned, undigested "
                        "state; use repro.sim.checkpoint)"
                    )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "hash":
                yield f"{where}: builtin hash() is per-process salted; use hash_stable"
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            it = node.iter
            if isinstance(it, (ast.Set, ast.SetComp)) or (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset")
            ):
                yield f"{where}: iterating a set directly (order is unstable; sort it)"


def test_src_tree_is_deterministic():
    problems = []
    for rel, tree in _iter_sources():
        problems.extend(_lint(rel, tree))
    assert not problems, "nondeterminism in src/repro:\n" + "\n".join(problems)


def test_wall_clock_exemptions_still_exist():
    # Keep the exemption lists honest: every exempted file must exist.
    for rel in WALL_CLOCK_EXEMPT | GZIP_EXEMPT:
        assert (SRC / rel).is_file(), f"stale exemption {rel}"


def test_lint_catches_planted_violations(tmp_path):
    planted = (
        "import functools, gzip, pickle, random, time\n"
        "x = random.random()\n"
        "t = time.time()\n"
        "h = hash('key')\n"
        "z = gzip.open('out.gz', 'wt')\n"
        "p = pickle.dumps(x)\n"
        "_RESULT_CACHE = {}\n"
        "class Widget:\n"
        "    @functools.lru_cache(maxsize=None)\n"
        "    def footprint(self):\n"
        "        pass\n"
        "for item in {1, 2}:\n"
        "    pass\n"
    )
    hits = list(_lint("planted.py", ast.parse(planted)))
    assert len(hits) == 8
    assert any("random.random" in h for h in hits)
    assert any("time.time" in h for h in hits)
    assert any("hash()" in h for h in hits)
    assert any("gzip.open" in h for h in hits)
    assert any("pickle.dumps" in h for h in hits)
    assert any("iterating a set" in h for h in hits)
    assert any("lru_cache on instance method Widget.footprint" in h for h in hits)
    assert any("module-level mutable cache _RESULT_CACHE" in h for h in hits)


def test_cache_rules_exempt_the_memo_home():
    planted = (
        "import functools\n"
        "_CACHE: dict = {}\n"
        "class EffectCache:\n"
        "    @functools.cache\n"
        "    def shape(self):\n"
        "        pass\n"
    )
    assert list(_lint("memo/cache.py", ast.parse(planted))) == []
    assert len(list(_lint("faas/platform.py", ast.parse(planted)))) == 2


def test_cache_rules_spare_legitimate_shapes():
    # Free functions may lru_cache (no instance captured); non-cache
    # module containers and immutable cache bindings are fine.
    planted = (
        "import functools\n"
        "@functools.lru_cache(maxsize=64)\n"
        "def parse(text):\n"
        "    pass\n"
        "REGISTRY = {}\n"
        "_CACHE_LIMIT = 64\n"
        "class Table:\n"
        "    @property\n"
        "    def rows(self):\n"
        "        pass\n"
    )
    assert list(_lint("analysis/report.py", ast.parse(planted))) == []


def test_gzip_rule_exempts_the_archive_module():
    planted = "import gzip\nz = gzip.GzipFile(fileobj=None)\n"
    assert list(_lint("trace/archive.py", ast.parse(planted))) == []
    assert len(list(_lint("sim/trace.py", ast.parse(planted)))) == 1


def test_json_rule_bans_the_event_hot_path_only():
    planted = "import json\nline = json.dumps({})\njson.dump({}, None)\n"
    for rel in JSON_EVENT_HOT_PATH:
        hits = list(_lint(rel, ast.parse(planted)))
        assert len(hits) == 2, rel
        assert all("repro.trace.encode" in h for h in hits)
        assert (SRC / rel).is_file(), f"stale hot-path entry {rel}"
    # The encoder module itself and ordinary reporting code are free to
    # call json -- the ban is about event emission, not serialization.
    assert list(_lint("trace/encode.py", ast.parse(planted))) == []
    assert list(_lint("analysis/bench.py", ast.parse(planted))) == []


def test_pickle_rule_exempts_only_the_sanctioned_modules():
    planted = "import pickle\nblob = pickle.dumps({})\nback = pickle.loads(blob)\n"
    assert list(_lint("sim/checkpoint.py", ast.parse(planted))) == []
    assert list(_lint("sim/wire.py", ast.parse(planted))) == []
    assert list(_lint("memo/effects.py", ast.parse(planted))) == []
    assert len(list(_lint("check/fuzz.py", ast.parse(planted)))) == 2
    for rel in PICKLE_EXEMPT:
        assert (SRC / rel).is_file(), f"stale exemption {rel}"
