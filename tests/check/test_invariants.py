"""Unit tests for the pure check functions in repro.check.invariants.

Pattern: build a healthy object, assert the check passes; corrupt one
internal counter or structure, assert the check raises a
:class:`Violation` with the expected stable invariant name.  The names
are API -- the fuzzer shrinks against them and regression tests pin
them -- so these tests lock them down.
"""

from __future__ import annotations

from fractions import Fraction
from types import SimpleNamespace

import pytest

from repro.check import (
    Violation,
    check_file,
    check_instance,
    check_mapping,
    check_physical,
    check_platform,
    check_segment_manifest,
    check_shard_conservation,
    check_runlist,
    check_runtime,
    check_smaps,
    check_space,
)
from repro.faas.instance import FunctionInstance, InstanceState
from repro.mem.layout import PAGE_SIZE, PROT_RX
from repro.mem.physical import MappedFile, PhysicalMemory
from repro.mem.runlist import RunList
from repro.mem.vmm import PageState, VirtualAddressSpace
from repro.workloads.model import FunctionSpec

KIB = 1024

SPEC = FunctionSpec(
    name="inv-py",
    language="python",
    description="invariant-test function",
    base_exec_seconds=0.004,
    ephemeral_bytes=192 * KIB,
    frame_bytes=96 * KIB,
    persistent_bytes=64 * KIB,
    object_size=16 * KIB,
    code_size=64 * KIB,
    warm_units=2,
)


def violation_name(check, *args, **kwargs) -> str:
    with pytest.raises(Violation) as caught:
        check(*args, **kwargs)
    return caught.value.invariant


# ---------------------------------------------------------------- run lists


class TestCheckRunlist:
    def make(self) -> RunList:
        runs = RunList()
        runs.splice(0, 16, [(0, 4, "a"), (6, 10, "b"), (12, 16, "a")])
        return runs

    def test_healthy_passes(self):
        check_runlist(self.make(), "t", 0, 16)

    def test_shape(self):
        runs = self.make()
        runs.starts.append(20)
        assert violation_name(check_runlist, runs, "t", 0, 32) == "runlist-shape"

    def test_empty_run(self):
        runs = self.make()
        runs.ends[0] = runs.starts[0]
        assert violation_name(check_runlist, runs, "t", 0, 16) == "runlist-length"

    def test_bounds(self):
        runs = self.make()
        assert violation_name(check_runlist, runs, "t", 0, 10) == "runlist-bounds"

    def test_unsorted(self):
        runs = RunList()
        runs.starts, runs.ends, runs.values = [0, 2], [4, 6], ["a", "b"]
        assert violation_name(check_runlist, runs, "t", 0, 16) == "runlist-sorted"

    def test_uncoalesced(self):
        runs = RunList()
        runs.starts, runs.ends, runs.values = [0, 4], [4, 8], ["a", "a"]
        assert violation_name(check_runlist, runs, "t", 0, 16) == "runlist-coalesced"

    def test_violation_message_carries_parts(self):
        with pytest.raises(Violation) as caught:
            check_runlist(self.make(), "subj", 0, 10)
        violation = caught.value
        assert violation.invariant == "runlist-bounds"
        assert violation.subject == "subj"
        assert "[runlist-bounds] subj:" in str(violation)


# ----------------------------------------------------------------- mappings


class TestCheckMapping:
    def make(self):
        space = VirtualAddressSpace("[inv]", PhysicalMemory())
        mapping = space.mmap(8 * PAGE_SIZE)
        space.touch(mapping.start, 4 * PAGE_SIZE, write=True)
        return space, mapping

    def test_healthy_passes(self):
        _, mapping = self.make()
        check_mapping(mapping)

    def test_counter_drift(self):
        _, mapping = self.make()
        mapping.n_anon += 1
        assert violation_name(check_mapping, mapping) == "mapping-counters"

    def test_explicit_not_present_run(self):
        _, mapping = self.make()
        mapping._runs.splice(6, 7, [(6, 7, PageState.NOT_PRESENT)])
        assert violation_name(check_mapping, mapping) == "mapping-not-present-run"

    def test_file_pages_without_file(self):
        _, mapping = self.make()
        mapping._runs.splice(0, 1, [(0, 1, PageState.FILE_CLEAN)])
        mapping.n_anon -= 1
        mapping.n_file += 1
        assert violation_name(check_mapping, mapping) == "mapping-fileless"


class TestCheckSpace:
    def make(self):
        space = VirtualAddressSpace("[inv]", PhysicalMemory())
        first = space.mmap(4 * PAGE_SIZE)
        second = space.mmap(4 * PAGE_SIZE)
        space.touch(first.start, PAGE_SIZE, write=True)
        return space, first, second

    def test_healthy_passes(self):
        space, _, _ = self.make()
        check_space(space)

    def test_closed_space_keeps_mappings(self):
        space, _, _ = self.make()
        space.close()
        space._mappings[0x1000] = object()
        assert violation_name(check_space, space) == "space-closed"

    def test_starts_unsorted(self):
        space, _, _ = self.make()
        space._starts.reverse()
        assert violation_name(check_space, space) == "space-starts-sorted"

    def test_overlapping_mappings(self):
        space, first, second = self.make()
        second.start = first.start
        assert violation_name(check_space, space) == "space-disjoint"


# --------------------------------------------------------------- page cache


class TestCheckFile:
    def make(self):
        physical = PhysicalMemory()
        file = MappedFile("/inv/lib.so", 8 * PAGE_SIZE)
        space = VirtualAddressSpace("[inv]", physical)
        one = space.mmap(8 * PAGE_SIZE, prot=PROT_RX, file=file)
        two = space.mmap(8 * PAGE_SIZE, prot=PROT_RX, file=file)
        space.touch(one.start, 6 * PAGE_SIZE, write=False)
        space.touch(two.start, 3 * PAGE_SIZE, write=False)
        return file, one, two

    def test_healthy_passes(self):
        file, _, _ = self.make()
        check_file(file)

    def test_resident_counter_drift(self):
        file, _, _ = self.make()
        file._resident += 1
        assert violation_name(check_file, file) == "file-resident"

    def test_pss_share_drift(self):
        file, one, _ = self.make()
        file._pss[one.id] += Fraction(1)
        assert violation_name(check_file, file) == "file-pss"

    def test_solo_counter_drift(self):
        file, one, _ = self.make()
        file._solo[one.id] = file._solo.get(one.id, 0) + 1
        assert violation_name(check_file, file) == "file-solo"

    def test_empty_holder_set(self):
        file, _, _ = self.make()
        file._holders.splice(7, 8, [(7, 8, frozenset())])
        assert violation_name(check_file, file) == "file-empty-holders"


# ----------------------------------------------------------------- physical


class TestCheckPhysical:
    def make(self):
        physical = PhysicalMemory()
        space = VirtualAddressSpace("[inv]", physical)
        mapping = space.mmap(8 * PAGE_SIZE)
        space.touch(mapping.start, 8 * PAGE_SIZE, write=True)
        space.swap_out_range(mapping.start, 2 * PAGE_SIZE)
        return physical, space

    def test_healthy_passes(self):
        physical, space = self.make()
        check_physical(physical, [space])

    def test_anon_frame_leak(self):
        physical, space = self.make()
        physical._anon_frames += 1
        assert violation_name(check_physical, physical, [space]) == "frames-anon"

    def test_file_frame_leak(self):
        physical, space = self.make()
        physical._file_frames += 1
        assert violation_name(check_physical, physical, [space]) == "frames-file"

    def test_swap_flow_breaks_on_phantom_out(self):
        physical, space = self.make()
        physical.swap.total_swap_outs += 1
        assert violation_name(check_physical, physical, [space]) == "swap-flow"

    def test_swap_pages_vs_mappings(self):
        physical, space = self.make()
        physical.swap.pages += 1
        assert violation_name(check_physical, physical, [space]) == "swap-pages"

    def test_negative_frames(self):
        physical, space = self.make()
        physical._anon_frames = -1
        assert violation_name(check_physical, physical, [space]) == "frames-negative"

    def test_capacity_exceeded(self):
        physical, space = self.make()
        physical.capacity_bytes = PAGE_SIZE
        assert violation_name(check_physical, physical, [space]) == "frames-capacity"


# -------------------------------------------------------------------- smaps


class TestCheckSmaps:
    def test_healthy_passes(self):
        physical = PhysicalMemory()
        file = MappedFile("/inv/lib.so", 8 * PAGE_SIZE)
        space = VirtualAddressSpace("[inv]", physical)
        anon = space.mmap(8 * PAGE_SIZE)
        shared = space.mmap(8 * PAGE_SIZE, prot=PROT_RX, file=file)
        space.touch(anon.start, 4 * PAGE_SIZE, write=True)
        space.touch(shared.start, 6 * PAGE_SIZE, write=False)
        check_smaps(space)

    def test_pss_corruption_detected(self):
        physical = PhysicalMemory()
        file = MappedFile("/inv/lib.so", 8 * PAGE_SIZE)
        space = VirtualAddressSpace("[inv]", physical)
        shared = space.mmap(8 * PAGE_SIZE, prot=PROT_RX, file=file)
        space.touch(shared.start, 6 * PAGE_SIZE, write=False)
        file._pss[shared.id] = Fraction(0)
        with pytest.raises(Violation) as caught:
            check_smaps(space)
        assert caught.value.invariant.startswith("smaps-")


# ----------------------------------------------------------------- runtimes


class TestCheckRuntime:
    def make(self):
        instance = FunctionInstance(SPEC, memory_budget=32 * 1024 * KIB)
        instance.boot(0.0)
        instance.invoke(0.1)
        return instance

    def test_healthy_passes(self):
        check_runtime(self.make().runtime)

    def test_unbooted_runtime_skipped(self):
        instance = FunctionInstance(SPEC, memory_budget=32 * 1024 * KIB)
        check_runtime(instance.runtime)  # must not raise before boot

    def test_negative_gc_seconds(self):
        runtime = self.make().runtime
        runtime.total_gc_seconds = -0.5
        assert violation_name(check_runtime, runtime) == "gc-seconds"

    def test_used_beyond_committed(self):
        runtime = self.make().runtime
        runtime.heap_stats = lambda: SimpleNamespace(
            committed=PAGE_SIZE, used=2 * PAGE_SIZE, live_estimate=0
        )
        assert violation_name(check_runtime, runtime) == "heap-used-le-committed"

    def test_live_beyond_committed(self):
        runtime = self.make().runtime
        runtime.heap_stats = lambda: SimpleNamespace(
            committed=PAGE_SIZE, used=PAGE_SIZE, live_estimate=3 * PAGE_SIZE
        )
        assert violation_name(check_runtime, runtime) == "heap-live-le-committed"

    def test_negative_heap(self):
        runtime = self.make().runtime
        runtime.heap_stats = lambda: SimpleNamespace(
            committed=-1, used=0, live_estimate=0
        )
        assert violation_name(check_runtime, runtime) == "heap-negative"


# ---------------------------------------------------------------- instances


class TestCheckInstance:
    def make(self) -> FunctionInstance:
        instance = FunctionInstance(SPEC, memory_budget=32 * 1024 * KIB)
        instance.boot(0.0)
        instance.invoke(0.1)
        return instance

    def test_lifecycle_passes(self):
        instance = self.make()
        check_instance(instance)
        instance.freeze(1.0)
        check_instance(instance)
        instance.thaw(2.0)
        check_instance(instance)
        instance.destroy(3.0)
        check_instance(instance)

    def test_frozen_without_timestamp(self):
        instance = self.make()
        instance.freeze(1.0)
        instance.frozen_since = None
        assert violation_name(check_instance, instance) == "instance-frozen-since"

    def test_stale_frozen_since(self):
        instance = self.make()
        instance.frozen_since = 1.0
        assert violation_name(check_instance, instance) == "instance-frozen-since"

    def test_dead_with_open_space(self):
        instance = self.make()
        instance.state = InstanceState.DEAD
        assert violation_name(check_instance, instance) == "instance-dead-space"

    def test_alive_with_closed_space(self):
        instance = self.make()
        instance.destroy(3.0)
        instance.state = InstanceState.IDLE
        assert violation_name(check_instance, instance) == "instance-closed-space"

    def test_illegal_transition(self):
        instance = self.make()
        instance.transitions.append((1.0, InstanceState.RUNNING))
        assert violation_name(check_instance, instance) == "instance-transition"

    def test_time_regression(self):
        instance = self.make()
        instance.freeze(5.0)
        instance.transitions[-1] = (-1.0, InstanceState.FROZEN)
        assert violation_name(check_instance, instance) == "instance-transition-time"


# ----------------------------------------------------------------- platform


def fake_platform(**overrides):
    platform = SimpleNamespace(
        node_id=0,
        used_bytes=lambda: 10 * PAGE_SIZE,
        capacity_bytes=100 * PAGE_SIZE,
        overcommits=0,
        _running=1,
        max_concurrency=4,
        _instances={},
        cpu=SimpleNamespace(busy={"exec": 1.0, "gc": 0.25}),
    )
    for key, value in overrides.items():
        setattr(platform, key, value)
    return platform


class TestCheckPlatform:
    def test_healthy_passes(self):
        check_platform(fake_platform())

    def test_unrecorded_overcommit(self):
        platform = fake_platform(used_bytes=lambda: 200 * PAGE_SIZE)
        assert violation_name(check_platform, platform) == "cgroup-capacity"

    def test_recorded_overcommit_allowed(self):
        check_platform(
            fake_platform(used_bytes=lambda: 200 * PAGE_SIZE, overcommits=1)
        )

    def test_concurrency_out_of_bounds(self):
        assert (
            violation_name(check_platform, fake_platform(_running=-1))
            == "platform-concurrency"
        )
        assert (
            violation_name(check_platform, fake_platform(_running=9))
            == "platform-concurrency"
        )

    def test_negative_cpu_charge(self):
        platform = fake_platform(cpu=SimpleNamespace(busy={"gc": -0.1}))
        assert violation_name(check_platform, platform) == "cgroup-cpu"

    def test_dead_instance_still_pooled(self):
        dead = FunctionInstance(SPEC, memory_budget=32 * 1024 * KIB)
        dead.boot(0.0)
        dead.destroy(1.0)
        platform = fake_platform(_instances={"inv-py": [dead]})
        assert violation_name(check_platform, platform) == "platform-dead-pooled"


# ------------------------------------------------------- shard conservation


def shard_report(shard=0, clock=4.0, pages=2, outs=5, ins=2, discards=1, used=64):
    return {
        "shard": shard,
        "clock": clock,
        "conservation": {
            "frames_used_bytes": used,
            "swap_pages": pages,
            "swap_outs": outs,
            "swap_ins": ins,
            "swap_discards": discards,
        },
    }


class TestShardConservation:
    def test_healthy_barrier_passes(self):
        check_shard_conservation(
            [shard_report(0), shard_report(1, clock=5.0)], horizon=5.0
        )

    def test_flow_balances_globally_not_per_shard(self):
        """Pages swapped out on one shard's books may be accounted
        resident on another's aggregate: only the global sum gates."""
        check_shard_conservation(
            [
                shard_report(0, pages=0, outs=5, ins=2, discards=1),
                shard_report(1, pages=4, outs=3, ins=1, discards=0),
            ],
            horizon=10.0,
        )

    def test_broken_global_flow_detected(self):
        reports = [shard_report(pages=99)]
        assert (
            violation_name(check_shard_conservation, reports, 5.0)
            == "shard-swap-flow"
        )

    def test_negative_counter_detected(self):
        reports = [shard_report(used=-1)]
        assert (
            violation_name(check_shard_conservation, reports, 5.0)
            == "shard-frame-nonneg"
        )

    def test_clock_past_horizon_detected(self):
        reports = [shard_report(clock=5.5)]
        assert (
            violation_name(check_shard_conservation, reports, 5.0)
            == "shard-clock-horizon"
        )

    def test_clock_at_horizon_allowed(self):
        check_shard_conservation([shard_report(clock=5.0)], horizon=5.0)

    def test_drain_epoch_skips_clock_law(self):
        check_shard_conservation([shard_report(clock=99.0)], horizon=None)


def _footer(bucket=0, node=0, events=10, t_min=1.0, t_max=9.0, **extra):
    footer = {
        "name": f"seg-b{bucket:08d}-n{node:03d}.jsonl.gz",
        "bucket": bucket,
        "node": node,
        "events": events,
        "payload_bytes": 100,
        "bucket_seconds": 10.0,
        "t_min": t_min,
        "t_max": t_max,
    }
    footer.update(extra)
    return footer


class TestSegmentManifest:
    def test_healthy_manifest_passes(self):
        footers = [_footer(0, 0), _footer(0, 1), _footer(1, 0, t_min=10.0, t_max=19.5)]
        check_segment_manifest(footers)
        check_segment_manifest(footers, composed_events=30)

    def test_duplicate_cell_detected(self):
        with pytest.raises(Violation, match="duplicate segment"):
            check_segment_manifest([_footer(0, 0), _footer(0, 0)])

    def test_nonpositive_events_detected(self):
        with pytest.raises(Violation, match="claims 0 events"):
            check_segment_manifest([_footer(events=0, t_min=None, t_max=None)])

    def test_negative_payload_detected(self):
        with pytest.raises(Violation, match="negative payload_bytes"):
            check_segment_manifest([_footer(payload_bytes=-1)])

    def test_name_address_mismatch_detected(self):
        bad = _footer(bucket=1, t_min=10.0, t_max=12.0)
        bad["name"] = "seg-b00000002-n000.jsonl.gz"
        with pytest.raises(Violation, match="footer addresses"):
            check_segment_manifest([bad])

    def test_inverted_time_range_detected(self):
        with pytest.raises(Violation, match="t_min"):
            check_segment_manifest([_footer(t_min=9.0, t_max=1.0)])

    def test_time_outside_bucket_detected(self):
        with pytest.raises(Violation, match="outside bucket"):
            check_segment_manifest([_footer(bucket=0, t_max=10.0)])

    def test_event_sum_mismatch_detected(self):
        with pytest.raises(Violation, match="composed"):
            check_segment_manifest([_footer(events=10)], composed_events=11)

    def test_violation_kind(self):
        with pytest.raises(Violation) as err:
            check_segment_manifest([_footer(events=-1, t_min=None, t_max=None)])
        assert err.value.invariant == "segment-manifest"
