"""Pinned regressions for accounting bugs the oracle work surfaced.

Each test reproduces the exact pre-fix scenario and asserts the fixed
accounting -- plus the oracle law that would have caught the drift.
"""

from __future__ import annotations

from repro.check import check_physical
from repro.check.fuzz import generate_ops, run_ops
from repro.check.invariants import check_instance
from repro.faas.instance import FunctionInstance
from repro.mem.layout import MIB, PAGE_SIZE
from repro.mem.physical import PhysicalMemory
from repro.mem.reference import ReferenceAddressSpace
from repro.mem.vmm import VirtualAddressSpace
from repro.workloads.model import FunctionSpec

SPEC = FunctionSpec(
    name="reg-py",
    language="python",
    description="regression-test function",
    base_exec_seconds=0.004,
    ephemeral_bytes=192 * 1024,
    frame_bytes=96 * 1024,
    persistent_bytes=64 * 1024,
    object_size=16 * 1024,
    code_size=64 * 1024,
    warm_units=2,
)


def swapped_region(space_cls):
    """An 8-page anonymous region with pages 0-3 swapped out."""
    physical = PhysicalMemory()
    space = space_cls("[reg]", physical)
    mapping = space.mmap(8 * PAGE_SIZE)
    space.touch(mapping.start, 8 * PAGE_SIZE, write=True)
    space.swap_out_range(mapping.start, 4 * PAGE_SIZE)
    return physical, space, mapping


class TestSwapDiscardAccounting:
    """Dropping swapped pages (munmap/discard/uncommit/close) must count
    as *discards*, never as swap-ins: no frame comes back, no major fault
    is paid, and ``total_swap_ins`` must keep tracking major faults 1:1
    (the pre-fix code double-counted them as swap-ins)."""

    def test_munmap_of_swapped_range(self):
        physical, space, mapping = swapped_region(VirtualAddressSpace)
        majors_before = space.faults.major
        space.munmap(mapping.start, 8 * PAGE_SIZE)
        swap = physical.swap
        assert swap.pages == 0
        assert swap.total_discards == 4
        assert swap.total_swap_ins == 0
        assert space.faults.major == majors_before
        check_physical(physical, [space])

    def test_discard_of_swapped_range(self):
        physical, space, mapping = swapped_region(VirtualAddressSpace)
        space.discard(mapping.start, 4 * PAGE_SIZE)
        assert physical.swap.total_discards == 4
        assert physical.swap.total_swap_ins == 0
        check_physical(physical, [space])

    def test_uncommit_of_swapped_range(self):
        physical, space, mapping = swapped_region(VirtualAddressSpace)
        space.uncommit(mapping.start, 4 * PAGE_SIZE)
        assert physical.swap.total_discards == 4
        assert physical.swap.total_swap_ins == 0
        check_physical(physical, [space])

    def test_close_discards_everything_swapped(self):
        physical, space, _ = swapped_region(VirtualAddressSpace)
        space.close()
        assert physical.swap.pages == 0
        assert physical.swap.total_discards == 4
        assert physical.swap.total_swap_ins == 0

    def test_touch_after_swap_still_pays_major_faults(self):
        physical, space, mapping = swapped_region(VirtualAddressSpace)
        counts = space.touch(mapping.start, 4 * PAGE_SIZE, write=True)
        assert counts.major == 4
        assert physical.swap.total_swap_ins == 4
        assert physical.swap.total_discards == 0
        check_physical(physical, [space])

    def test_reference_model_agrees(self):
        """Differential: the per-page reference oracle keeps identical
        swap counters through the same sequence."""
        fast = swapped_region(VirtualAddressSpace)
        slow = swapped_region(ReferenceAddressSpace)
        for physical, space, mapping in (fast, slow):
            space.touch(mapping.start, PAGE_SIZE, write=True)  # 1 major
            space.discard(mapping.start + PAGE_SIZE, PAGE_SIZE)  # 1 discard
            space.munmap(mapping.start, 8 * PAGE_SIZE)  # 2 discards
        for attr in ("pages", "total_swap_outs", "total_swap_ins", "total_discards"):
            assert getattr(fast[0].swap, attr) == getattr(slow[0].swap, attr), attr


class TestInstanceRegressions:
    def test_destroy_clears_frozen_since(self):
        """Pre-fix, destroying a frozen instance left ``frozen_since``
        set; the instance-frozen-since law flagged every eviction."""
        instance = FunctionInstance(SPEC, memory_budget=32 * MIB)
        instance.boot(0.0)
        instance.invoke(0.1)
        instance.freeze(1.0)
        instance.destroy(2.0)
        assert instance.frozen_since is None
        check_instance(instance)

    def test_reclaim_of_snapshotted_instance_may_grow_uss(self):
        """Reclaiming a snapshotted instance faults live data back in, so
        USS legitimately grows; the reclaim-uss law must exempt it (the
        pre-fix oracle flagged fuzz seeds 1, 2, 4 and 6 on this)."""
        instance = FunctionInstance(SPEC, memory_budget=32 * MIB)
        instance.boot(0.0)
        instance.invoke(0.1)
        instance.snapshot(1.0)
        uss_before = instance.uss()
        outcome = instance.reclaim()
        assert outcome.uss_before == uss_before
        # The exemption only applies while the heap is paged out.
        assert outcome.uss_before < outcome.live_bytes
        from repro.check import InvariantOracle, OracleConfig

        oracle = InvariantOracle(OracleConfig(cadence="end"))
        oracle.attach_world(instances=[instance])
        oracle.finish()  # must not raise reclaim-uss


class TestFixedSeedFuzzRegression:
    def test_previously_false_positive_seeds_stay_clean(self):
        # Seeds that tripped pre-fix oracle bugs (reclaim-uss on
        # snapshotted instances, discard-as-swap-in parity).
        for seed in (1, 2, 4, 6):
            failure, _ = run_ops(generate_ops(seed, 400), check_every=5)
            assert failure is None, f"seed {seed}: {failure}"
