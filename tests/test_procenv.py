"""Tests for explicit run-flag propagation into worker processes."""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro import fastpath, procenv


def _probe(_=None):
    """Runs in the worker: report the flags simulation code would see."""
    return {
        "fastpath": fastpath.enabled(),
        "check": os.environ.get("REPRO_CHECK"),
        "every": os.environ.get("REPRO_CHECK_EVERY"),
    }


@pytest.fixture
def restore_fastpath():
    original = fastpath.enabled()
    yield
    fastpath.set_enabled(original)


class TestSnapshot:
    def test_snapshot_reflects_live_flag_not_environment(
        self, monkeypatch, restore_fastpath
    ):
        monkeypatch.setenv("REPRO_FASTPATH", "1")
        fastpath.set_enabled(False)  # programmatic flip wins
        assert procenv.snapshot()["REPRO_FASTPATH"] == "0"

    def test_snapshot_forwards_check_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        monkeypatch.setenv("REPRO_CHECK_EVERY", "3")
        snap = procenv.snapshot()
        assert snap["REPRO_CHECK"] == "1"
        assert snap["REPRO_CHECK_EVERY"] == "3"

    def test_snapshot_extra_overrides(self):
        assert procenv.snapshot({"REPRO_CHECK": "0"})["REPRO_CHECK"] == "0"

    def test_apply_resets_cached_fastpath_state(self, restore_fastpath):
        fastpath.set_enabled(True)
        procenv.apply({"REPRO_FASTPATH": "0"})
        assert fastpath.enabled() is False
        assert os.environ["REPRO_FASTPATH"] == "0"


class TestSpawnPropagation:
    """The actual bug class: ``spawn`` children re-import everything, so
    a parent's programmatic flag flips vanish unless re-applied."""

    def _spawn_probe(self, initializer=None, initargs=()):
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=1,
            mp_context=context,
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            return pool.submit(_probe).result()

    def test_initializer_ships_flipped_flag_to_spawn_child(
        self, monkeypatch, restore_fastpath
    ):
        monkeypatch.setenv("REPRO_CHECK", "1")
        monkeypatch.setenv("REPRO_CHECK_EVERY", "5")
        fastpath.set_enabled(False)
        seen = self._spawn_probe(procenv.initializer, (procenv.snapshot(),))
        assert seen == {"fastpath": False, "check": "1", "every": "5"}

    def test_without_initializer_the_flip_is_lost(
        self, monkeypatch, restore_fastpath
    ):
        monkeypatch.delenv("REPRO_FASTPATH", raising=False)
        fastpath.set_enabled(False)
        seen = self._spawn_probe()
        # The child fell back to the environment default: this is the
        # silent divergence the initializer exists to prevent.
        assert seen["fastpath"] is True
