"""Figure 8: per-instance RSS and PSS improvement vs container count.

Launch N fft instances on one node (libraries shareable, but no warm
overlay cache keeping them hot), reclaim with Desiccant, and compare
per-instance RSS/PSS against a vanilla run.  Paper shape: ~4.2x RSS and
PSS improvement at one container; with more containers the RSS gain is
stable while PSS converges toward USS as library pages amortize.
"""

from conftest import RESULTS_DIR

from repro.analysis.characterize import run_concurrent_instances
from repro.analysis.report import render_table, write_csv
from repro.mem.layout import MIB

COUNTS = (1, 2, 4, 8)


def _collect():
    results = {}
    for count in COUNTS:
        results[(count, "vanilla")] = run_concurrent_instances(
            "fft", count=count, iterations=30, desiccant=False
        )
        results[(count, "desiccant")] = run_concurrent_instances(
            "fft", count=count, iterations=30, desiccant=True
        )
    return results


def test_fig8_rss_pss_improvement(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    gains = {}
    for count in COUNTS:
        vanilla = results[(count, "vanilla")]
        desiccant = results[(count, "desiccant")]
        rss_gain = vanilla["rss_per_instance"] / desiccant["rss_per_instance"]
        pss_gain = vanilla["pss_per_instance"] / desiccant["pss_per_instance"]
        gains[count] = (rss_gain, pss_gain)
        rows.append(
            [
                count,
                f"{vanilla['rss_per_instance'] / MIB:.1f}",
                f"{desiccant['rss_per_instance'] / MIB:.1f}",
                f"{rss_gain:.2f}x",
                f"{pss_gain:.2f}x",
                f"{desiccant['pss_per_instance'] / MIB:.1f}",
                f"{desiccant['uss_per_instance'] / MIB:.1f}",
            ]
        )
    print("\nFigure 8. Per-instance RSS/PSS (MiB) vs container count:\n")
    print(
        render_table(
            ["containers", "rss_vanilla", "rss_desiccant", "rss_gain",
             "pss_gain", "pss_desiccant", "uss_desiccant"],
            rows,
        )
    )
    write_csv(
        results_dir / "fig8.csv",
        ["containers", "rss_vanilla_mib", "rss_desiccant_mib", "rss_gain",
         "pss_gain", "pss_desiccant_mib", "uss_desiccant_mib"],
        rows,
    )

    # At one container RSS and PSS improve identically and substantially.
    rss_1, pss_1 = gains[1]
    assert rss_1 > 2.5
    assert abs(rss_1 - pss_1) < 0.05 * rss_1
    # With several containers the libraries are shared: they re-enter each
    # instance's RSS (shared pages count fully), so the RSS gain settles at
    # the in-heap-reclamation level -- still well above 1.
    assert gains[8][0] > 1.5
    # PSS approaches USS as sharing deepens: the shared-page share of PSS
    # (libraries / k) shrinks from 2 containers to 8.  (At 1 container all
    # pages are private, so the gap is trivially zero there.)
    gap_2 = (
        results[(2, "desiccant")]["pss_per_instance"]
        - results[(2, "desiccant")]["uss_per_instance"]
    )
    gap_8 = (
        results[(8, "desiccant")]["pss_per_instance"]
        - results[(8, "desiccant")]["uss_per_instance"]
    )
    assert gap_8 < gap_2
