#!/usr/bin/env python
"""Fuzz smoke: the script face of ``repro fuzz`` (the CI seed matrix).

Fans a fixed seed range across a process pool, each seed running a
deterministic randomized schedule under the invariant oracle; exits
nonzero (and leaves shrunk ``.jsonl`` repro cases in ``--case-dir``)
when any conservation law breaks::

    python benchmarks/fuzz_smoke.py --seed 0..63 --ops 2000 --jobs 4 \\
        --check-every 25 --case-dir fuzz-cases

Schedules are deterministic per seed -- a parallel run finds exactly the
failures a serial one would; only the wall time varies.
"""

from __future__ import annotations

import sys

from repro.cli import main as repro_main


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    return repro_main(["fuzz", *argv])


if __name__ == "__main__":
    sys.exit(main())
