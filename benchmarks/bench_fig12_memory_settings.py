"""Figure 12: memory consumption under different memory budgets.

(a) mean Java consumption, (b) mean JavaScript consumption, and the two
representative singles: (c) clock stays flat at any budget, (d) fft's
vanilla/eager consumption balloons with the budget (young generation cap
scales), pushing Desiccant's improvement to its maximum (paper: 6.72x vs
vanilla at 1 GiB).
"""

from statistics import mean

from conftest import characterize

from repro.analysis.report import render_table, write_csv
from repro.mem.layout import MIB
from repro.workloads import all_definitions

BUDGETS = (256, 512, 1024)
POLICIES = ("vanilla", "eager", "desiccant")


def _collect():
    return {
        (d.name, policy, budget): characterize(d.name, policy, budget_mib=budget)
        for d in all_definitions()
        for policy in POLICIES
        for budget in BUDGETS
    }


def test_fig12_memory_vs_budget(benchmark, results_dir):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for label, names in (
        ("java (mean)", [d.name for d in all_definitions() if d.language == "java"]),
        (
            "javascript (mean)",
            [d.name for d in all_definitions() if d.language == "javascript"],
        ),
        ("clock", ["clock"]),
        ("fft", ["fft"]),
    ):
        for budget in BUDGETS:
            vanilla = mean(data[(n, "vanilla", budget)].final_uss for n in names)
            eager = mean(data[(n, "eager", budget)].final_uss for n in names)
            desiccant = mean(data[(n, "desiccant", budget)].final_uss for n in names)
            rows.append(
                [
                    label,
                    f"{budget}MiB",
                    f"{vanilla / MIB:.1f}",
                    f"{eager / MIB:.1f}",
                    f"{desiccant / MIB:.1f}",
                    f"{vanilla / desiccant:.2f}x",
                ]
            )
    print("\nFigure 12. USS (MiB) vs memory budget:\n")
    print(
        render_table(
            ["series", "budget", "vanilla", "eager", "desiccant", "gain"], rows
        )
    )
    write_csv(
        results_dir / "fig12.csv",
        ["series", "budget_mib", "vanilla_mib", "eager_mib", "desiccant_mib",
         "desiccant_vs_vanilla"],
        rows,
    )

    # clock (12c): consumption stable regardless of the budget.
    clock_small = data[("clock", "vanilla", 256)].final_uss
    clock_large = data[("clock", "vanilla", 1024)].final_uss
    assert clock_large < clock_small * 1.3

    # fft (12d): vanilla and eager balloon; Desiccant stays flat, so the
    # gain is maximal at 1 GiB (paper: 6.72x vanilla / 5.50x eager).
    fft_vanilla = {b: data[("fft", "vanilla", b)].final_uss for b in BUDGETS}
    fft_eager = {b: data[("fft", "eager", b)].final_uss for b in BUDGETS}
    fft_desiccant = {b: data[("fft", "desiccant", b)].final_uss for b in BUDGETS}
    assert fft_vanilla[1024] > fft_vanilla[256] * 1.5
    assert fft_desiccant[1024] < fft_desiccant[256] * 1.3
    gain_vanilla = fft_vanilla[1024] / fft_desiccant[1024]
    gain_eager = fft_eager[1024] / fft_desiccant[1024]
    print(f"\nfft @1GiB: desiccant vs vanilla {gain_vanilla:.2f}x (paper 6.72), "
          f"vs eager {gain_eager:.2f}x (paper 5.50)")
    assert gain_vanilla > 4.0
    assert gain_eager > 2.0
    assert gain_vanilla > fft_vanilla[256] / fft_desiccant[256]  # grows with budget

    # Java (12a): reduction roughly stable across budgets (paper 2.75->2.94).
    java_names = [d.name for d in all_definitions() if d.language == "java"]
    for budget in BUDGETS:
        java_gain = mean(
            data[(n, "vanilla", budget)].final_uss
            / data[(n, "desiccant", budget)].final_uss
            for n in java_names
        )
        assert 1.8 < java_gain < 5.0
