"""Ablation (§5.4/§7): Desiccant over serial GC vs G1GC.

The paper studies serial GC because Lambda uses it, and argues (§7) that
G1 satisfies Desiccant's two requirements (throughput estimation + free-
region knowledge).  This bench runs the same workload on both collectors
and checks that the frozen-garbage problem and Desiccant's fix carry over.
"""

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.core.profiles import ProfileStore
from repro.core.reclaimer import reclaim_instance
from repro.faas.libraries import SharedLibraryPool
from repro.mem.layout import KIB, MIB
from repro.mem.physical import PhysicalMemory
from repro.runtime.g1 import G1Runtime
from repro.runtime.hotspot import HotSpotRuntime

ITERATIONS = 60


def _exercise(runtime_cls, shared_files, physical):
    rt = runtime_cls("rt", physical=physical, shared_files=shared_files)
    rt.boot()
    for i in range(ITERATIONS):
        rt.begin_invocation()
        if i == 0:
            # Initialization data lives through the first invocation and
            # inflates the heap (the paper's Java observation).
            for _ in range(160):
                rt.alloc(64 * KIB, scope="frame")
            rt.alloc(2 * MIB, scope="persistent")
        for _ in range(160):
            rt.alloc(64 * KIB, scope="ephemeral")
        rt.alloc(512 * KIB, scope="frame")
        rt.end_invocation()
    return rt


def _collect():
    results = {}
    for label, cls in (("serial", HotSpotRuntime), ("g1", G1Runtime)):
        physical = PhysicalMemory()
        pool = SharedLibraryPool(physical, runtime_classes=(cls,))
        rt = _exercise(cls, pool.files, physical)
        uss_before = rt.uss()
        ideal = rt.ideal_uss()
        outcome = rt.reclaim()
        results[label] = {
            "uss_before": uss_before,
            "uss_after": outcome.uss_after,
            "ideal": ideal,
            "released": outcome.released_bytes,
            "cpu_seconds": outcome.cpu_seconds,
        }
        rt.destroy()
    return results


def test_ablation_g1_vs_serial(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for label, r in results.items():
        rows.append(
            [
                label,
                f"{r['uss_before'] / MIB:.1f}",
                f"{r['uss_after'] / MIB:.1f}",
                f"{r['ideal'] / MIB:.1f}",
                f"{r['released'] / MIB:.1f}",
                f"{r['cpu_seconds'] * 1000:.2f}",
            ]
        )
    print("\nAblation: Desiccant over serial GC vs G1 (same workload):\n")
    print(
        render_table(
            ["collector", "uss_before", "uss_after", "ideal", "released",
             "cpu ms"],
            rows,
        )
    )
    write_csv(
        results_dir / "ablation_g1.csv",
        ["collector", "uss_before_mib", "uss_after_mib", "ideal_mib",
         "released_mib", "cpu_ms"],
        rows,
    )

    for label, r in results.items():
        # Frozen garbage exists on both collectors...
        assert r["uss_before"] > 1.5 * r["ideal"], label
        # ...and Desiccant reclaims both close to the ideal.
        assert r["uss_after"] <= 1.25 * r["ideal"], label
        assert r["released"] > 4 * MIB, label
