"""Figure 2: memory-consumption curves for two representative functions.

file-hash (Java) and fft (JavaScript), 100 iterations, vanilla vs eager vs
ideal.  Paper shape: eager pins file-hash's heap to a few MiB (the §3.2.1
resize), but for fft eager barely helps -- the young generation has doubled
to its cap and the hot allocation rate blocks shrinking (§3.2.2).
"""

from conftest import characterize

from repro.analysis.report import render_table, write_csv
from repro.mem.layout import MIB


def _collect():
    return {
        (name, policy): characterize(name, policy)
        for name in ("file-hash", "fft")
        for policy in ("vanilla", "eager")
    }


def test_fig2_memory_consumption_curves(benchmark, results_dir):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    for name in ("file-hash", "fft"):
        vanilla = data[(name, "vanilla")]
        eager = data[(name, "eager")]
        rows = []
        for i in range(0, len(vanilla.uss_series), 10):
            rows.append(
                [
                    i + 1,
                    f"{vanilla.uss_series[i] / MIB:.1f}",
                    f"{eager.uss_series[i] / MIB:.1f}",
                    f"{vanilla.ideal_series[i] / MIB:.1f}",
                ]
            )
        print(f"\nFigure 2 ({name}): USS in MiB over iterations\n")
        print(render_table(["iteration", "vanilla", "eager", "ideal"], rows))
        write_csv(
            results_dir / f"fig2_{name}.csv",
            ["iteration", "vanilla_mib", "eager_mib", "ideal_mib"],
            rows,
        )

    # file-hash: eager controls the heap -- far below vanilla, near ideal.
    fh_vanilla, fh_eager = data[("file-hash", "vanilla")], data[("file-hash", "eager")]
    assert fh_eager.final_uss < 0.75 * fh_vanilla.final_uss
    # fft: eager helps much less -- stays far from ideal.
    fft_vanilla, fft_eager = data[("fft", "vanilla")], data[("fft", "eager")]
    assert fft_eager.final_uss > 2.0 * fft_eager.final_ideal
    # eager's *relative* gain on fft is smaller than on file-hash (§3.2.2).
    assert (fft_vanilla.final_uss / fft_eager.final_uss) < (
        fh_vanilla.final_uss / fh_eager.final_uss
    )
    # vanilla curves rise then plateau: the last value dominates the first.
    assert fh_vanilla.uss_series[-1] >= fh_vanilla.uss_series[0]
