"""Ablation (§4.6): the shared-library unmap optimization on and off.

On a Lambda-style instance (private library mappings) the unmap releases
the libraries' private-clean pages; on an OpenWhisk-style node with shared
libraries it must be a no-op (the pages belong to everyone).
"""

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.core.profiles import ProfileStore
from repro.core.reclaimer import reclaim_instance
from repro.faas.instance import FunctionInstance
from repro.faas.libraries import SharedLibraryPool
from repro.mem.layout import MIB
from repro.mem.physical import PhysicalMemory
from repro.runtime.v8 import V8Runtime
from repro.workloads.registry import get_definition


def _frozen_instance(shared: bool) -> FunctionInstance:
    physical = PhysicalMemory()
    shared_files = None
    if shared:
        shared_files = SharedLibraryPool(
            physical, runtime_classes=(V8Runtime,)
        ).files
    spec = get_definition("fft").stages[0]
    instance = FunctionInstance(spec, physical=physical, shared_files=shared_files)
    instance.boot()
    for _ in range(30):
        instance.invoke()
        instance.freeze()
        instance.thaw()
    instance.freeze()
    return instance


def _collect():
    results = {}
    for platform, shared in (("lambda", False), ("openwhisk", True)):
        for unmap in (False, True):
            instance = _frozen_instance(shared)
            report = reclaim_instance(
                instance, ProfileStore(), unmap_libraries=unmap
            )
            results[(platform, unmap)] = {
                "uss_after": report.uss_after,
                "library_bytes": report.library_bytes,
            }
            instance.destroy()
    return results


def test_ablation_library_unmap(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for (platform, unmap), r in results.items():
        rows.append(
            [
                platform,
                "on" if unmap else "off",
                f"{r['uss_after'] / MIB:.1f}",
                f"{r['library_bytes'] / MIB:.1f}",
            ]
        )
    print("\nAblation: §4.6 library unmap (fft, 30 executions):\n")
    print(
        render_table(
            ["platform", "unmap", "uss_after MiB", "libraries released MiB"],
            rows,
        )
    )
    write_csv(
        results_dir / "ablation_libunmap.csv",
        ["platform", "unmap", "uss_after_mib", "library_released_mib"],
        rows,
    )

    # Lambda: the optimization releases the private libraries (>10 MiB).
    lam_off = results[("lambda", False)]
    lam_on = results[("lambda", True)]
    assert lam_on["library_bytes"] > 10 * MIB
    assert lam_on["uss_after"] < lam_off["uss_after"] - 10 * MIB
    # OpenWhisk: shared pages -> nothing private to release.
    ow_on = results[("openwhisk", True)]
    assert ow_on["library_bytes"] == 0
