"""Ablation: cluster routing x Desiccant.

Extends the single-node §5.3 result to a 4-node cluster: warm-affinity
routing concentrates each function's warm instances, and Desiccant shrinks
them wherever they land -- the two compose, with the best cold-boot rate
when both are on.

``least-loaded-live`` is the scheduler the shared event kernel makes
possible: it routes each request at its arrival time against *live*
cluster state (which nodes hold a warm instance, current cache pressure).
It matches warm-affinity's cold-boot rate under Desiccant while spreading
load noticeably more evenly -- affinity's static hash cannot react to a
hot function saturating its home node.
"""

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.core import Desiccant, VanillaManager
from repro.faas.cluster import Cluster, ClusterConfig
from repro.faas.platform import PlatformConfig
from repro.mem.layout import MIB
from repro.trace.generator import TraceGenerator

SCHEDULERS = ("round-robin", "least-assigned", "warm-affinity", "least-loaded-live")


def _run(scheduler, with_desiccant):
    cluster = Cluster(
        ClusterConfig(
            nodes=4,
            scheduler=scheduler,
            node_config=PlatformConfig(capacity_bytes=512 * MIB),
        ),
        manager_factory=Desiccant if with_desiccant else VanillaManager,
    )
    arrivals = TraceGenerator(seed=42).arrivals(60.0, scale_factor=15.0)
    cluster.submit(arrivals)
    stats = cluster.run()
    cluster.destroy()
    return stats


def _collect():
    return {
        (scheduler, desiccant): _run(scheduler, desiccant)
        for scheduler in SCHEDULERS
        for desiccant in (False, True)
    }


def test_ablation_cluster_routing(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for scheduler in SCHEDULERS:
        vanilla = results[(scheduler, False)]
        desiccant = results[(scheduler, True)]
        rows.append(
            [
                scheduler,
                f"{vanilla.cold_boot_rate:.3f}",
                f"{desiccant.cold_boot_rate:.3f}",
                f"{vanilla.imbalance:.2f}",
                f"{desiccant.p99_latency:.2f}s",
            ]
        )
    print("\nAblation: 4-node cluster routing x Desiccant (SF 15):\n")
    print(
        render_table(
            ["scheduler", "cold/req vanilla", "cold/req desiccant",
             "imbalance", "p99 desiccant"],
            rows,
        )
    )
    write_csv(
        results_dir / "ablation_cluster.csv",
        ["scheduler", "cold_rate_vanilla", "cold_rate_desiccant",
         "imbalance", "p99_desiccant_s"],
        rows,
    )

    for scheduler in SCHEDULERS:
        assert (
            results[(scheduler, True)].cold_boot_rate
            <= results[(scheduler, False)].cold_boot_rate
        ), scheduler
    # Warm affinity helps the vanilla cluster...
    assert (
        results[("warm-affinity", False)].cold_boot_rate
        < results[("round-robin", False)].cold_boot_rate
    )
    # ...and the best configuration pairs a warm-aware scheduler with
    # Desiccant (static affinity and live routing tie on this trace).
    best = min(results.values(), key=lambda s: s.cold_boot_rate)
    warm_aware_best = min(
        results[("warm-affinity", True)].cold_boot_rate,
        results[("least-loaded-live", True)].cold_boot_rate,
    )
    assert best.cold_boot_rate == warm_aware_best
    # Live routing keeps cold boots near warm-affinity's while balancing
    # load better: it reacts to cache pressure instead of a static hash.
    assert (
        results[("least-loaded-live", False)].cold_boot_rate
        < results[("round-robin", False)].cold_boot_rate
    )
    assert (
        results[("least-loaded-live", True)].imbalance
        <= results[("warm-affinity", True)].imbalance + 1e-9
    )
