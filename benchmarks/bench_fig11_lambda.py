"""Figure 11: memory efficiency on the Lambda-style platform.

Same §5.2 protocol but with Lambda's memory layout: no page sharing
between function deployments, so libraries are private mappings.  Paper
shape: Desiccant still wins everywhere (2.08x average for Java, 2.76x for
JavaScript -- *larger* than on OpenWhisk for JS because the §4.6 unmap now
reclaims the private libraries; image-pipeline is excluded as it is on
Lambda in the paper).
"""

from statistics import mean

from conftest import characterize

from repro.analysis.report import render_table, write_csv
from repro.mem.layout import MIB
from repro.workloads import all_definitions

#: The paper cannot run image-pipeline on the vanilla Corretto image.
EXCLUDED = {"image-pipeline"}


def _definitions():
    return [d for d in all_definitions() if d.name not in EXCLUDED]


def _collect():
    data = {}
    for definition in _definitions():
        for policy in ("vanilla", "desiccant"):
            data[(definition.name, policy)] = characterize(
                definition.name, policy, shared_libraries=False
            )
    return data


def test_fig11_lambda_memory_efficiency(benchmark, results_dir):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    gains = {"java": [], "javascript": []}
    for definition in _definitions():
        vanilla = data[(definition.name, "vanilla")]
        desiccant = data[(definition.name, "desiccant")]
        gain = vanilla.final_uss / desiccant.final_uss
        gains[definition.language].append(gain)
        rows.append(
            [
                definition.name,
                definition.language,
                f"{vanilla.final_uss / MIB:.1f}",
                f"{desiccant.final_uss / MIB:.1f}",
                f"{gain:.2f}x",
            ]
        )
    print("\nFigure 11. Lambda-style platform, USS after 100 executions:\n")
    print(render_table(["function", "lang", "vanilla", "desiccant", "gain"], rows))
    write_csv(
        results_dir / "fig11.csv",
        ["function", "language", "vanilla_mib", "desiccant_mib", "gain"],
        rows,
    )

    java_gain = mean(gains["java"])
    js_gain = mean(gains["javascript"])
    print(f"\nmean gain: java={java_gain:.2f}x (paper 2.08), "
          f"javascript={js_gain:.2f}x (paper 2.76)")

    assert all(g > 1.0 for lang in gains.values() for g in lang)
    assert java_gain > 1.5
    assert js_gain > 1.8

    # The unmap optimization makes the JS win larger on Lambda than the
    # OpenWhisk equivalent (paper: 2.76 vs 1.93).
    openwhisk_js = mean(
        characterize(d.name, "vanilla").final_uss
        / characterize(d.name, "desiccant").final_uss
        for d in _definitions()
        if d.language == "javascript"
    )
    print(f"javascript gain on OpenWhisk for comparison: {openwhisk_js:.2f}x")
    assert js_gain > openwhisk_js
