"""Ablation (§6.1): Desiccant composes with keep-alive policies.

The paper: "their warm-up policies are orthogonal to Desiccant, and
Desiccant's memory reclamation policy can further improve the memory
efficiency in their systems."  Replays the trace under LRU, FaasCache-style
greedy-dual, and the histogram keep-alive -- each with and without
Desiccant -- and checks Desiccant lowers the cold-boot rate under *every*
policy.
"""

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.core import Desiccant, VanillaManager
from repro.faas.keepalive import (
    GreedyDualSizeFrequency,
    HybridHistogramKeepAlive,
    LruEviction,
)
from repro.faas.platform import PlatformConfig
from repro.mem.layout import GIB
from repro.trace.generator import TraceGenerator
from repro.trace.replay import ReplayConfig, replay

POLICIES = {
    "lru": LruEviction,
    "greedy-dual": GreedyDualSizeFrequency,
    "hybrid-histogram": HybridHistogramKeepAlive,
}


def _run(policy_name, with_desiccant):
    config = ReplayConfig(
        scale_factor=18.0,
        warmup_seconds=20.0,
        duration_seconds=45.0,
        platform=PlatformConfig(
            capacity_bytes=1 * GIB,
            eviction_policy=POLICIES[policy_name](),
        ),
    )
    manager_factory = Desiccant if with_desiccant else VanillaManager
    result = replay(manager_factory, config, TraceGenerator(seed=42))
    stats = result.stats
    for instance in result.platform.all_instances():
        instance.destroy()
    return stats


def _collect():
    return {
        (policy, desiccant): _run(policy, desiccant)
        for policy in POLICIES
        for desiccant in (False, True)
    }


def test_ablation_keepalive_composition(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for policy in POLICIES:
        without = results[(policy, False)]
        with_d = results[(policy, True)]
        rows.append(
            [
                policy,
                f"{without.cold_boot_rate:.3f}",
                f"{with_d.cold_boot_rate:.3f}",
                without.evictions,
                with_d.evictions,
                f"{with_d.p99_latency:.2f}s",
            ]
        )
    print("\nAblation: keep-alive policies with and without Desiccant "
          "(SF 18, 1 GiB):\n")
    print(
        render_table(
            ["policy", "cold/req vanilla", "cold/req desiccant",
             "evict vanilla", "evict desiccant", "p99 desiccant"],
            rows,
        )
    )
    write_csv(
        results_dir / "ablation_keepalive.csv",
        ["policy", "cold_rate_vanilla", "cold_rate_desiccant",
         "evictions_vanilla", "evictions_desiccant", "p99_desiccant_s"],
        rows,
    )

    for policy in POLICIES:
        without = results[(policy, False)]
        with_d = results[(policy, True)]
        # The orthogonality claim: Desiccant helps under every policy.
        assert with_d.cold_boot_rate < without.cold_boot_rate, policy
        assert with_d.evictions <= without.evictions, policy
