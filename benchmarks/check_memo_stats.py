"""Gate the effect-cache hit rate of memoized bench legs.

CI runs the small replay suite with ``--memo-twin`` and feeds the
resulting JSON here.  The digest gate (memoized trace byte-identical to
the plain twin) already lives in the runner itself -- this script checks
the other half of the memoization contract: the cache must actually be
hitting, otherwise the ``:memo`` leg silently degrades into a slower
copy of the plain leg and the speedup numbers in BENCH_replay.json stop
meaning anything.

The floor is size-dependent: small's 30-second measurement window caps
the hit rate near 40% (docs/MEMOIZATION.md), so CI gates at 0.25 --
low enough to absorb scheduling jitter, high enough to catch a
fingerprint regression, which drops the rate to ~0.

Always writes a compact per-leg stats digest (``--stats-out``) so a
failing run ships the counters with the job artifact.

Usage::

    python benchmarks/check_memo_stats.py memo-smoke.json \
        --min-hit-rate 0.25 --stats-out memo-stats.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def collect_memo_runs(document: dict) -> list:
    runs = []
    for run in document.get("runs", []):
        if ":memo" not in run.get("label", ""):
            continue
        metrics = run.get("metrics", {})
        runs.append(
            {
                "label": run["label"],
                "wall_seconds": run.get("wall_seconds"),
                "memo_hits": metrics.get("memo_hits", 0),
                "memo_misses": metrics.get("memo_misses", 0),
                "memo_evictions": metrics.get("memo_evictions", 0),
                "memo_entries": metrics.get("memo_entries", 0),
                "memo_cached_bytes": metrics.get("memo_cached_bytes", 0),
                "memo_hit_rate": metrics.get("memo_hit_rate", 0.0),
            }
        )
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", help="bench results JSON (--json output)")
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=0.25,
        help="minimum acceptable memo_hit_rate per :memo leg",
    )
    parser.add_argument(
        "--stats-out",
        default=None,
        help="write a compact per-leg memo stats JSON here",
    )
    args = parser.parse_args(argv)

    document = json.loads(Path(args.results).read_text())
    runs = collect_memo_runs(document)
    if args.stats_out:
        Path(args.stats_out).write_text(
            json.dumps({"memo_runs": runs}, indent=2, sort_keys=True) + "\n"
        )

    if not runs:
        print(
            "no :memo legs found in the results "
            "(missing --memo-twin, or wrong --memo-sizes?)",
            file=sys.stderr,
        )
        return 1

    failures = []
    for run in runs:
        lookups = run["memo_hits"] + run["memo_misses"]
        print(
            f"{run['label']}: hit_rate={run['memo_hit_rate']:.3f} "
            f"({run['memo_hits']}/{lookups}), "
            f"entries={run['memo_entries']}, "
            f"evictions={run['memo_evictions']}, "
            f"cached_bytes={run['memo_cached_bytes']}"
        )
        if lookups == 0:
            failures.append(f"{run['label']}: cache saw no lookups")
        elif run["memo_hit_rate"] < args.min_hit_rate:
            failures.append(
                f"{run['label']}: hit rate {run['memo_hit_rate']:.3f} "
                f"below the {args.min_hit_rate:g} floor"
            )
    for failure in failures:
        print(f"MEMO HIT RATE {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
