"""Figure 9: end-to-end performance on Azure-style traces.

Sweep the scale factor and replay the synthetic trace under vanilla, eager,
and Desiccant: cold-boot rate (9a), throughput (9b), and CPU utilization
(9c).  Paper shape: Desiccant cuts the cold-boot rate by multiples (up to
4.49x vs vanilla / 3.75x vs eager), matches-or-beats throughput, and its
reclamation costs only a few percent of CPU (<=6.2%); eager burns extra
CPU on collections at every exit.
"""

from conftest import replay_stats

from repro.analysis.report import render_table, write_csv

SCALE_FACTORS = (5, 15, 25)
POLICIES = ("vanilla", "eager", "desiccant")


def _collect():
    return {
        (sf, policy): replay_stats(policy, sf)
        for sf in SCALE_FACTORS
        for policy in POLICIES
    }


def test_fig9_azure_trace_replay(benchmark, results_dir):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for sf in SCALE_FACTORS:
        for policy in POLICIES:
            s = data[(sf, policy)]
            rows.append(
                [
                    sf,
                    policy,
                    f"{s.cold_boot_rate:.3f}",
                    f"{s.throughput_rps:.1f}",
                    f"{s.cpu_utilization:.3f}",
                    s.evictions,
                    f"{s.reclaim_cpu_fraction:.3f}",
                    f"{s.eager_gc_cpu_fraction:.3f}",
                ]
            )
    print("\nFigure 9. Replay results per scale factor:\n")
    print(
        render_table(
            ["sf", "policy", "cold/req", "rps", "cpu_util", "evictions",
             "reclaim_cpu", "eager_gc_cpu"],
            rows,
        )
    )
    write_csv(
        results_dir / "fig9.csv",
        ["scale_factor", "policy", "cold_boot_rate", "throughput_rps",
         "cpu_utilization", "evictions", "reclaim_cpu_fraction",
         "eager_gc_cpu_fraction"],
        rows,
    )

    for sf in SCALE_FACTORS[1:]:  # under load (SF >= 15)
        vanilla = data[(sf, "vanilla")]
        eager = data[(sf, "eager")]
        desiccant = data[(sf, "desiccant")]
        # 9a: Desiccant's cold-boot rate beats both baselines by multiples.
        assert desiccant.cold_boot_rate < vanilla.cold_boot_rate / 2.0
        assert desiccant.cold_boot_rate < eager.cold_boot_rate / 1.5
        # 9b: throughput at least matches the baselines.
        assert desiccant.throughput_rps >= 0.95 * vanilla.throughput_rps
        # 9c: Desiccant spends less CPU than vanilla (fewer cold boots) and
        # its reclamation overhead stays single-digit.
        assert desiccant.cpu_utilization <= vanilla.cpu_utilization
        assert desiccant.reclaim_cpu_fraction < 0.10
        # eager pays a visible GC tax.
        assert eager.eager_gc_cpu_fraction > 0.0
