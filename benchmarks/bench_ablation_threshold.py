"""Ablation (§4.5.1): dynamic activation threshold vs static settings.

A controlled pressure episode: a frozen fleet occupies ~70% of the frozen
capacity, then a burst of launches arrives needing full instance budgets.

* static-low (10%)  -- always over threshold: reclaims everything all the
  time, burning reclaim CPU even when memory is ample;
* static-high (90%) -- never activates at 70%: the burst must evict frozen
  instances, each a future cold boot;
* dynamic (60% floor, relaxing upward) -- activates before the burst, so
  no evictions, at a fraction of static-low's reclaim work over time.
"""

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.core import ActivationController, Desiccant
from repro.faas.instance import FunctionInstance, InstanceState
from repro.faas.libraries import SharedLibraryPool
from repro.mem.layout import GIB, MIB
from repro.mem.physical import PhysicalMemory
from repro.runtime.cpython import CPythonRuntime
from repro.runtime.hotspot import HotSpotRuntime
from repro.runtime.v8 import V8Runtime
from repro.workloads.registry import get_definition

CAPACITY = 1 * GIB
INSTANCE_BUDGET = 256 * MIB
FLEET = [
    "hotel-searching", "image-resize", "fft", "matrix", "sort",
    "file-hash", "data-analysis", "unionfind", "web-server", "factor",
    "specjbb2015", "dynamic-html", "filesystem", "image-pipeline",
]
BURST_LAUNCHES = 2

VARIANTS = {
    "static-low (10%)": lambda: ActivationController(
        floor=0.10, ceiling=0.10, hysteresis=0.05
    ),
    "static-high (90%)": lambda: ActivationController(
        floor=0.90, ceiling=0.90, hysteresis=0.05
    ),
    "dynamic (paper)": lambda: ActivationController(),
}


class EpisodePlatform:
    """A minimal platform view around an explicit frozen fleet."""

    def __init__(self) -> None:
        self.physical = PhysicalMemory()
        self.pool = SharedLibraryPool(
            self.physical,
            runtime_classes=(HotSpotRuntime, V8Runtime, CPythonRuntime),
        )
        self.instances = []
        self.evictions = 0
        self.capacity_bytes = CAPACITY
        for k, name in enumerate(FLEET):
            spec = get_definition(name).stages[0]
            instance = FunctionInstance(
                spec, physical=self.physical, shared_files=self.pool.files, seed=k
            )
            instance.boot()
            for _ in range(20):
                instance.invoke(0.0)
            instance.freeze(0.0)
            self.instances.append(instance)

    def frozen_instances(self):
        return [i for i in self.instances if i.state is InstanceState.FROZEN]

    def frozen_bytes(self):
        return sum(i.uss() for i in self.frozen_instances())

    def frozen_capacity_bytes(self):
        return self.capacity_bytes - INSTANCE_BUDGET

    def idle_cpu_share(self):
        return 1.0

    def burst(self, launches: int) -> int:
        """Launch ``launches`` budgets' worth of new work, evicting LRU
        frozen instances whenever the headroom is missing."""
        reserved = 0
        for _ in range(launches):
            while (
                self.capacity_bytes - self.frozen_bytes() - reserved
                < INSTANCE_BUDGET
            ):
                victims = self.frozen_instances()
                if not victims:
                    break
                victim = min(victims, key=lambda i: i.last_used_at)
                victim.destroy()
                self.instances.remove(victim)
                self.evictions += 1
            reserved += INSTANCE_BUDGET
        return self.evictions


def _run_variant(make_activation):
    platform = EpisodePlatform()
    manager = Desiccant(activation=make_activation())
    manager.config.freeze_timeout_seconds = 0.1
    occupancy = platform.frozen_bytes() / platform.frozen_capacity_bytes()
    # Several background sweeps pass before the burst.
    reclaim_cpu = sum(manager.step(now=10.0 + t, platform=platform) for t in range(6))
    evictions = platform.burst(BURST_LAUNCHES)
    result = {
        "occupancy": occupancy,
        "reclaims": len(manager.reports),
        "reclaim_cpu": reclaim_cpu,
        "evictions": evictions,
    }
    for instance in platform.instances:
        instance.destroy()
    return result


def _collect():
    return {label: _run_variant(make) for label, make in VARIANTS.items()}


def test_ablation_activation_threshold(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [
            label,
            f"{r['occupancy']:.0%}",
            r["reclaims"],
            f"{r['reclaim_cpu'] * 1000:.1f}ms",
            r["evictions"],
        ]
        for label, r in results.items()
    ]
    print("\nAblation: activation threshold (70% occupancy + launch burst):\n")
    print(
        render_table(
            ["variant", "occupancy", "reclaims", "reclaim_cpu", "evictions"],
            rows,
        )
    )
    write_csv(
        results_dir / "ablation_threshold.csv",
        ["variant", "occupancy", "reclaims", "reclaim_cpu_ms", "evictions"],
        rows,
    )

    low = results["static-low (10%)"]
    high = results["static-high (90%)"]
    dynamic = results["dynamic (paper)"]
    # The fleet really sits between the dynamic floor and the high setting.
    assert 0.6 < dynamic["occupancy"] < 0.9
    # Too large: never activates, so the burst evicts (future cold boots).
    assert high["reclaims"] == 0
    assert high["evictions"] > 0
    # Dynamic: activates in time, burst needs no evictions.
    assert dynamic["reclaims"] > 0
    assert dynamic["evictions"] == 0
    # Too small reclaims at least as much as needed -- the same outcome as
    # dynamic here, and strictly more sweeping work over a long idle run.
    assert low["evictions"] == 0
    assert low["reclaim_cpu"] >= dynamic["reclaim_cpu"]
