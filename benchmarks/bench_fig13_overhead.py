"""Figure 13: execution overhead after reclamation (§5.6).

Run each function 130 times, reclaim, run 10 more; compare the average
latency across the reclamation boundary.  Paper shape: Desiccant's
overhead averages ~8.3%; reclaiming the same memory via swapping leaves
the sort function ~2.37x slower than Desiccant does; dropping the §4.7
non-aggressive mode slows the JIT-heavy unionfind and data-analysis by
1.74x / 2.14x.
"""

from statistics import mean

from conftest import RESULTS_DIR

from repro.analysis.characterize import run_overhead_experiment
from repro.analysis.report import render_table, write_csv
from repro.workloads import all_definitions

WARM = 130
PROBE = 10


def _collect():
    data = {}
    for definition in all_definitions():
        data[(definition.name, "desiccant")] = run_overhead_experiment(
            definition.name, "desiccant", warm_iterations=WARM, probe_iterations=PROBE
        )
    for name, reclaimer in (
        ("sort", "swap"),
        ("unionfind", "aggressive"),
        ("data-analysis", "aggressive"),
    ):
        data[(name, reclaimer)] = run_overhead_experiment(
            name, reclaimer, warm_iterations=WARM, probe_iterations=PROBE
        )
    return data


def test_fig13_post_reclaim_overhead(benchmark, results_dir):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    overheads = []
    for definition in all_definitions():
        before, after = data[(definition.name, "desiccant")]
        overhead = after / before - 1
        overheads.append(overhead)
        rows.append(
            [definition.name, definition.language, f"{overhead:+.1%}"]
        )
    print("\nFigure 13. Desiccant's post-reclaim execution overhead:\n")
    print(render_table(["function", "language", "overhead"], rows))
    write_csv(
        results_dir / "fig13.csv", ["function", "language", "overhead"], rows
    )

    avg = mean(overheads)
    print(f"\naverage overhead: {avg:.1%} (paper: 8.3%)")
    assert avg < 0.20
    assert all(o < 0.40 for o in overheads)

    # Swapping the same amount of memory: much slower re-execution.
    _, sort_desiccant = data[("sort", "desiccant")]
    _, sort_swap = data[("sort", "swap")]
    swap_ratio = sort_swap / sort_desiccant
    print(f"sort after swap vs after Desiccant: {swap_ratio:.2f}x (paper 2.37)")
    assert swap_ratio > 1.6

    # Aggressive collections deoptimize the JIT-heavy functions.
    for name, paper in (("unionfind", 1.74), ("data-analysis", 2.14)):
        _, after_desiccant = data[(name, "desiccant")]
        _, after_aggressive = data[(name, "aggressive")]
        ratio = after_aggressive / after_desiccant
        print(f"{name} aggressive vs non-aggressive: {ratio:.2f}x (paper {paper})")
        assert ratio > 1.25
