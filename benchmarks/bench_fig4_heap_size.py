"""Figure 4: frozen-garbage ratios under different memory budgets.

Average of avg/max ratios per language at 256 MiB / 512 MiB / 1 GiB.
Paper shape: Java only inches up (HotSpot controls the heap regardless of
budget); JavaScript grows markedly with the budget because V8's young
generation cap scales with the heap (fft: 3.27x -> 7.11x avg ratio).
"""

from statistics import mean

from conftest import characterize

from repro.analysis.report import render_table, write_csv
from repro.workloads import all_definitions

BUDGETS = (256, 512, 1024)


def _collect():
    table = {}
    for budget in BUDGETS:
        for definition in all_definitions():
            table[(definition.name, budget)] = characterize(
                definition.name, "vanilla", budget_mib=budget
            )
    return table


def test_fig4_ratios_vs_heap_budget(benchmark, results_dir):
    table = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    means = {}
    for language in ("java", "javascript"):
        names = [d.name for d in all_definitions() if d.language == language]
        for budget in BUDGETS:
            avg = mean(table[(n, budget)].avg_ratio for n in names)
            mx = mean(table[(n, budget)].max_ratio for n in names)
            means[(language, budget)] = (avg, mx)
            rows.append([language, f"{budget}MiB", f"{avg:.2f}", f"{mx:.2f}"])

    print("\nFigure 4. Mean ratios vs memory budget:\n")
    print(render_table(["language", "budget", "avg_ratio", "max_ratio"], rows))
    write_csv(
        results_dir / "fig4.csv",
        ["language", "budget_mib", "avg_ratio", "max_ratio"],
        rows,
    )
    fft = {b: table[("fft", b)].avg_ratio for b in BUDGETS}
    print(f"\nfft avg_ratio: {fft[256]:.2f} @256MiB -> {fft[1024]:.2f} @1GiB "
          f"(paper: 3.27 -> 7.11)")

    # Java: only a slight increase across budgets.
    java_small = means[("java", 256)][0]
    java_large = means[("java", 1024)][0]
    assert java_large < java_small * 1.35
    # JavaScript: clear growth with the budget.
    js_small = means[("javascript", 256)][0]
    js_large = means[("javascript", 1024)][0]
    assert js_large > js_small * 1.15
    # fft is the poster child: big growth.
    assert fft[1024] > fft[256] * 1.5
