"""Table 1: the evaluated FaaS function suite.

Regenerates the table's rows (language, name with chain size, description)
and sanity-checks the suite composition against the paper.
"""

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.workloads import table1_rows


def test_table1_function_suite(benchmark, results_dir):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)

    print("\nTable 1. Evaluated FaaS functions:\n")
    print(render_table(["language", "function", "description"], rows))
    write_csv(results_dir / "table1.csv", ["language", "function", "description"], rows)

    assert len(rows) == 20
    java = [r for r in rows if r[0] == "java"]
    javascript = [r for r in rows if r[0] == "javascript"]
    assert len(java) == 8 and len(javascript) == 12
    names = {r[1] for r in rows}
    for chained in (
        "image-pipeline (4)",
        "hotel-searching (3)",
        "mapreduce (2)",
        "specjbb2015 (3)",
        "data-analysis (6)",
        "alexa (8)",
    ):
        assert chained in names
