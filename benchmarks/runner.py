#!/usr/bin/env python
"""Parallel benchmark fan-out: the script face of ``repro bench``.

Fans the characterize grid, the VMM microbenchmark, and the macro replay
suite (fast/base leg pairs per size, plus digest-gated ``:memo``
effect-cache twins with ``--memo-twin`` -- docs/MEMOIZATION.md -- and the
``:enc`` generic-encoder / ``:digest-only`` storeless-sink twins with
``--encoder-twin`` / ``--digest-only-twin`` -- docs/EVENT_TRACE.md)
across a process pool and writes the aggregated wall/CPU timings +
metrics to a JSON document (the committed ``BENCH_vmm.json`` and
``BENCH_replay.json`` baselines are these)::

    python benchmarks/runner.py --jobs 4 --json BENCH_vmm.json
    python benchmarks/runner.py --suite replay --sizes small,medium,large \\
        --policies vanilla,desiccant --nodes 8 --shards 2,4 \\
        --unbatched-twin --memo-twin --encoder-twin --digest-only-twin \\
        --jobs 1 --json BENCH_replay.json

Metrics are deterministic -- every run seeds its own RNG streams and builds
its own physical memory, so a parallel run reports exactly the same numbers
as a serial one; only the timings vary with the machine.
"""

from __future__ import annotations

import sys

from repro.cli import main as repro_main


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    return repro_main(["bench", *argv])


if __name__ == "__main__":
    sys.exit(main())
