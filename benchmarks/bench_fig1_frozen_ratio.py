"""Figure 1: frozen-garbage ratios per function.

For every Table 1 function, the ratio between real USS and the ideal
consumption at each of 100 exit points -- ``avg_ratio`` and ``max_ratio``.
Paper shape: every ratio > 1; the Java mean of max ratios is ~2.7x (63%
frozen garbage), JavaScript ~2.2x (54%); hotel-searching's max exceeds 5.
"""

from statistics import mean

from conftest import characterize

from repro.analysis.report import render_table, write_csv
from repro.workloads import all_definitions


def _collect():
    return [characterize(d.name, "vanilla") for d in all_definitions()]


def test_fig1_frozen_garbage_ratios(benchmark, results_dir):
    summaries = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = [
        [s.function, s.language, f"{s.avg_ratio:.2f}", f"{s.max_ratio:.2f}"]
        for s in summaries
    ]
    print("\nFigure 1. Frozen-garbage ratios (USS / ideal):\n")
    print(render_table(["function", "language", "avg_ratio", "max_ratio"], rows))
    write_csv(
        results_dir / "fig1.csv",
        ["function", "language", "avg_ratio", "max_ratio"],
        rows,
    )

    java = [s for s in summaries if s.language == "java"]
    javascript = [s for s in summaries if s.language == "javascript"]
    java_mean = mean(s.max_ratio for s in java)
    js_mean = mean(s.max_ratio for s in javascript)
    print(f"\nmean max_ratio: java={java_mean:.2f} (paper 2.72), "
          f"javascript={js_mean:.2f} (paper 2.15)")

    # Shape assertions.
    assert all(s.max_ratio > 1.0 for s in summaries), "every function wastes"
    assert 1.8 <= java_mean <= 4.5
    assert 1.5 <= js_mean <= 4.0
    hotel = next(s for s in summaries if s.function == "hotel-searching")
    assert hotel.max_ratio > 4.0  # the paper's worst Java offender (>5)
    fft = next(s for s in summaries if s.function == "fft")
    clock = next(s for s in summaries if s.function == "clock")
    assert fft.avg_ratio > clock.avg_ratio  # fft is the worst JS offender
