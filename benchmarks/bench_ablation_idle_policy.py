"""Ablation (§5.2's alternative solutions): freeze vs destroy vs keep-warm.

The paper dismisses two alternatives to freeze-plus-Desiccant: destroying
idle instances (every request pays a cold boot) and not freezing at all
(memory looks like vanilla because execution keeps interrupting background
GC, and the idle threads burn CPU -- the §2.1 motivation for freezing).
"""

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.core import Desiccant, VanillaManager
from repro.faas.platform import PlatformConfig
from repro.mem.layout import GIB, MIB
from repro.trace.generator import TraceGenerator
from repro.trace.replay import ReplayConfig, replay

VARIANTS = {
    "destroy": ("destroy", VanillaManager),
    "keep-warm": ("keep-warm", VanillaManager),
    "freeze (vanilla)": ("freeze", VanillaManager),
    "freeze + desiccant": ("freeze", Desiccant),
}


def _run(idle_policy, manager_factory):
    config = ReplayConfig(
        scale_factor=12.0,
        warmup_seconds=20.0,
        duration_seconds=45.0,
        platform=PlatformConfig(
            capacity_bytes=1 * GIB, idle_policy=idle_policy
        ),
    )
    result = replay(manager_factory, config, TraceGenerator(seed=42))
    platform = result.platform
    summary = {
        "stats": result.stats,
        "frozen_mib": platform.frozen_bytes() / MIB,
        "cached_mib": platform.used_bytes() / MIB,
        "idle_cpu": platform.cpu.busy.get("idle_background", 0.0),
    }
    for instance in platform.all_instances():
        instance.destroy()
    return summary


def _collect():
    return {
        label: _run(policy, factory)
        for label, (policy, factory) in VARIANTS.items()
    }


def test_ablation_idle_policy(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for label, r in results.items():
        s = r["stats"]
        rows.append(
            [
                label,
                f"{s.cold_boot_rate:.3f}",
                f"{s.p99_latency:.2f}s",
                f"{s.cpu_utilization:.3f}",
                f"{r['cached_mib']:.0f}",
                f"{r['idle_cpu']:.1f}s",
            ]
        )
    print("\nAblation: idle-instance policies (SF 12, 1 GiB):\n")
    print(
        render_table(
            ["policy", "cold/req", "p99", "cpu util", "cached MiB",
             "idle-thread cpu"],
            rows,
        )
    )
    write_csv(
        results_dir / "ablation_idle_policy.csv",
        ["policy", "cold_boot_rate", "p99_s", "cpu_utilization",
         "cached_mib", "idle_thread_cpu_s"],
        rows,
    )

    destroy = results["destroy"]["stats"]
    keep_warm = results["keep-warm"]
    vanilla = results["freeze (vanilla)"]
    desiccant = results["freeze + desiccant"]["stats"]

    # Destroy: every request (stage) cold-boots -> worst latency.
    assert destroy.cold_boot_rate > 0.9
    assert destroy.p99_latency > desiccant.p99_latency
    # Keep-warm: memory like vanilla-freeze (§5.2), plus idle-thread CPU
    # the freeze semantics exist to save (§2.1).
    assert keep_warm["cached_mib"] > 0.6 * vanilla["cached_mib"]
    assert keep_warm["idle_cpu"] > 0.0
    assert results["freeze (vanilla)"]["idle_cpu"] == 0.0
    # Freeze + Desiccant dominates on cold boots.
    assert desiccant.cold_boot_rate <= min(
        destroy.cold_boot_rate,
        keep_warm["stats"].cold_boot_rate,
        vanilla["stats"].cold_boot_rate,
    )
