"""§7 generalization: Desiccant over CPython arenas and the Go runtime.

CPython frees an arena only when it is completely empty; Go's sweeper
recycles arenas without returning pages and only the (frozen-paused)
background scavenger ever releases them.  Both strand free pages across a
freeze, and the §7 recipe (GC + allocator structures + mmap release)
reclaims them.
"""

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.core.profiles import ProfileStore
from repro.core.reclaimer import reclaim_instance
from repro.core.selection import estimated_throughput
from repro.faas.instance import FunctionInstance
from repro.faas.libraries import SharedLibraryPool
from repro.mem.layout import KIB, MIB
from repro.mem.physical import PhysicalMemory
from repro.runtime.cpython import CPythonRuntime
from repro.runtime.golang import GoRuntime
from repro.workloads.model import FunctionSpec


def _handler_spec(language: str) -> FunctionSpec:
    return FunctionSpec(
        name=f"{language}-handler",
        language=language,
        description="request handler with cached state and temp churn",
        base_exec_seconds=0.05,
        ephemeral_bytes=4 * MIB,
        frame_bytes=512 * KIB,
        persistent_bytes=1 * MIB,
        init_ephemeral_bytes=3 * MIB,
        object_size=20 * KIB,
        jitter=0.0,
    )


def _run_language(language: str):
    physical = PhysicalMemory()
    pool = SharedLibraryPool(
        physical, runtime_classes=(CPythonRuntime, GoRuntime)
    )
    instance = FunctionInstance(
        _handler_spec(language), physical=physical, shared_files=pool.files
    )
    instance.boot()
    for _ in range(100):
        instance.invoke()
        instance.freeze()
        instance.thaw()
    instance.freeze()

    uss_before = instance.uss()
    heap_before = instance.heap_resident_bytes()
    live = instance.runtime.live_bytes()
    report = reclaim_instance(instance, ProfileStore())
    result = {
        "uss_before": uss_before,
        "uss_after": instance.uss(),
        "heap_before": heap_before,
        "live": live,
        "released": report.released_bytes,
        "cpu_seconds": report.cpu_seconds,
        "throughput": estimated_throughput(heap_before, live, report.cpu_seconds),
    }
    instance.destroy()
    return result


def _collect():
    return {language: _run_language(language) for language in ("python", "go")}


def test_sec7_other_runtimes(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for language, result in results.items():
        rows.append(
            [
                language,
                f"{result['uss_before'] / MIB:.2f}",
                f"{result['uss_after'] / MIB:.2f}",
                f"{result['released'] / MIB:.2f}",
                f"{result['cpu_seconds'] * 1000:.2f}",
                f"{result['throughput'] / MIB:.0f}",
            ]
        )
    print("\nSection 7. Generalization to CPython and Go:\n")
    print(
        render_table(
            ["runtime", "uss_before MiB", "uss_after MiB", "released MiB",
             "cpu ms", "throughput MiB/s"],
            rows,
        )
    )
    write_csv(
        results_dir / "sec7_other_runtimes.csv",
        ["runtime", "uss_before_mib", "uss_after_mib", "released_mib",
         "cpu_ms", "throughput_mib_s"],
        rows,
    )

    for language, result in results.items():
        assert result["uss_after"] < result["uss_before"], language
        assert result["released"] > 0, language
        assert result["throughput"] > 0, language
        # The reclaimed instance keeps its live state.
        assert result["live"] >= 1 * MIB, language
