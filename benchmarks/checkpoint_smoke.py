#!/usr/bin/env python
"""Checkpoint smoke: capture / restore / fork round-trip on a small replay.

The CI face of docs/CHECKPOINTS.md: for each shard count, run a small
traced cluster replay from scratch while capturing checkpoints, then

1. resume from ``measure-start.ckpt`` -- the merged trace SHA-256 must
   equal the uninterrupted run's;
2. resume from the last mid-measurement barrier -- same identity;
3. fork from ``measure-start.ckpt`` with no changes -- same identity;
4. fork with a changed policy -- must *not* raise (divergence is legal).

Exits nonzero on the first digest mismatch, leaving the artifacts
(checkpoints plus both flat traces) in ``--work-dir`` for upload::

    python benchmarks/checkpoint_smoke.py --shards 1,2 --work-dir ckpt-smoke
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path

from repro.core import Desiccant, VanillaManager
from repro.trace.replay import ClusterReplayConfig, cluster_replay


def _config(shards: int, work: Path, **overrides) -> ClusterReplayConfig:
    return ClusterReplayConfig(
        nodes=4,
        shards=shards,
        epoch_seconds=2.0,
        scale_factor=3.0,
        warmup_scale_factor=3.0,
        warmup_seconds=6.0,
        duration_seconds=10.0,
        trace=True,
        trace_seed=42,
        checkpoint_dir=work / "ckpt",
        checkpoint_every=2,
        **overrides,
    )


def run_smoke(shards: int, work: Path) -> int:
    failures = 0
    base_cfg = _config(shards, work, event_trace_path=work / "base.jsonl")
    base = cluster_replay(Desiccant, base_cfg)
    print(f"[shards={shards}] scratch: {base.trace_events} events "
          f"sha {base.trace_sha256[:12]}, {len(base.checkpoints)} checkpoints")

    def leg(name: str, **overrides) -> None:
        nonlocal failures
        result = cluster_replay(
            overrides.pop("factory", Desiccant),
            replace(_config(shards, work), **overrides),
        )
        match = result.trace_sha256 == base.trace_sha256
        verdict = "ok" if match else "DIGEST MISMATCH"
        print(f"[shards={shards}] {name}: sha {result.trace_sha256[:12]} "
              f"({verdict})")
        if not match:
            failures += 1

    measure_start = work / "ckpt" / "measure-start.ckpt"
    leg("resume @ measure-start", resume_from=measure_start)
    measured = sorted((work / "ckpt").glob("measured-*.ckpt"))
    if measured:
        leg(f"resume @ {measured[-1].name}", resume_from=measured[-1])
    leg("fork (unchanged)", resume_from=measure_start, fork={})
    # A changed-policy fork is allowed to diverge; it must simply run.
    # (The session is built with the capturing factory -- the fork
    # swaps managers after the restore, per docs/CHECKPOINTS.md.)
    forked = cluster_replay(
        Desiccant,
        replace(
            _config(shards, work),
            resume_from=measure_start,
            fork={"manager_factory": VanillaManager},
            event_trace_path=work / "fork.jsonl",
        ),
    )
    print(f"[shards={shards}] fork (policy=vanilla): "
          f"sha {forked.trace_sha256[:12]} ({forked.trace_events} events)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", default="1,2",
                        help="comma-separated shard counts (default 1,2)")
    parser.add_argument("--work-dir", default="ckpt-smoke",
                        help="artifact directory (kept on failure)")
    args = parser.parse_args(argv)
    failures = 0
    for shards in (int(part) for part in args.shards.split(",") if part):
        work = Path(args.work_dir) / f"shards{shards}"
        work.mkdir(parents=True, exist_ok=True)
        failures += run_smoke(shards, work)
    if failures:
        print(f"checkpoint smoke: {failures} digest mismatch(es)",
              file=sys.stderr)
        return 1
    print("checkpoint smoke: all legs byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
