"""VMM microbenchmark: bulk touch/discard vs the per-page reference.

Pytest mode (collected with the other benches) asserts the run-length VMM
beats the retained per-page oracle by at least 10x on a 200 MiB
touch + discard -- the PR's acceptance bar.  Script mode drives CI's
perf-smoke job::

    python benchmarks/bench_microbench_vmm.py --json out.json
    python benchmarks/bench_microbench_vmm.py --check BENCH_vmm.json

``--check`` exits 1 when the current touch/discard times exceed 2x the
committed baseline (tunable with ``--factor``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.bench import compare_micro, run_vmm_microbench

#: Acceptance bar: bulk ops must beat the per-page baseline by this much.
MIN_SPEEDUP = 10.0


def test_microbench_vmm_speedup():
    """The 200 MiB bulk touch + discard beats per-page by >= 10x."""
    metrics = run_vmm_microbench(size_mib=200, repeats=3)
    print(
        f"\ntouch   {metrics['touch_ms']:.3f} ms vs per-page "
        f"{metrics['ref_touch_ms']:.3f} ms ({metrics['speedup_touch']:.0f}x)\n"
        f"discard {metrics['discard_ms']:.3f} ms vs per-page "
        f"{metrics['ref_discard_ms']:.3f} ms ({metrics['speedup_discard']:.0f}x)"
    )
    assert metrics["speedup_touch"] >= MIN_SPEEDUP
    assert metrics["speedup_discard"] >= MIN_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--mib", type=int, default=200, help="range size in MiB")
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--json", metavar="PATH", help="write metrics JSON here")
    parser.add_argument(
        "--check", metavar="BASELINE", help="compare against this baseline JSON"
    )
    parser.add_argument(
        "--factor", type=float, default=2.0, help="allowed slowdown (default 2x)"
    )
    args = parser.parse_args(argv)

    metrics = run_vmm_microbench(size_mib=args.mib, repeats=args.repeats)
    print(json.dumps(metrics, indent=2))
    if args.json:
        Path(args.json).write_text(json.dumps(metrics, indent=2) + "\n")
    if args.check:
        baseline = json.loads(Path(args.check).read_text())
        # Accept either the bare metrics dict or the repro-bench document.
        if "runs" in baseline:
            baseline = next(
                (
                    r["metrics"]
                    for r in baseline["runs"]
                    if r.get("spec", {}).get("kind") == "micro"
                ),
                {},
            )
        failures = compare_micro(metrics, baseline, factor=args.factor)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print("within baseline", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
