"""Ablation (§4.5.2): throughput-ranked selection vs FIFO vs random.

With a fixed reclamation budget (K instances out of a mixed frozen fleet),
the §4.5.2 estimated-throughput ranking should release the most memory per
CPU-second, because it prefers instances whose heaps hold the most
reclaimable (dead) bytes per unit of collection work.
"""

import random

from conftest import RESULTS_DIR

from repro.analysis.report import render_table, write_csv
from repro.core.profiles import ProfileStore
from repro.core.reclaimer import reclaim_instance
from repro.core.selection import rank_candidates
from repro.faas.instance import FunctionInstance
from repro.faas.libraries import SharedLibraryPool
from repro.mem.layout import MIB
from repro.mem.physical import PhysicalMemory
from repro.runtime.cpython import CPythonRuntime
from repro.runtime.hotspot import HotSpotRuntime
from repro.runtime.v8 import V8Runtime
from repro.workloads.registry import get_definition

#: A mixed fleet: lean instances frozen first (so FIFO picks them), fat
#: ones later -- exactly the case where semantic ranking matters.
FLEET = [
    "time", "clock", "fibonacci", "pi",
    "sort", "file-hash", "factor", "web-server",
    "hotel-searching", "image-resize", "fft", "matrix",
]
RECLAIM_BUDGET = 4


def _build_fleet(profiles: ProfileStore):
    physical = PhysicalMemory()
    pool = SharedLibraryPool(
        physical, runtime_classes=(HotSpotRuntime, V8Runtime, CPythonRuntime)
    )
    instances = []
    for k, name in enumerate(FLEET):
        spec = get_definition(name).stages[0]
        instance = FunctionInstance(
            spec, physical=physical, shared_files=pool.files, seed=k
        )
        instance.boot()
        for _ in range(25):
            instance.invoke(0.0)
        instance.freeze(0.0)
        instances.append(instance)
    return instances


def _train_profiles() -> ProfileStore:
    """Warm the function-level profiles the way §4.5.2 bootstraps them."""
    profiles = ProfileStore()
    for instance in _build_fleet(ProfileStore()):
        reclaim_instance(instance, profiles)
        instance.destroy()
    return profiles


def _run_strategy(strategy: str, profiles: ProfileStore, seed: int = 7):
    instances = _build_fleet(profiles)
    if strategy == "throughput":
        ranked = [
            inst for _t, inst in rank_candidates(instances, profiles, now=100.0)
        ]
    elif strategy == "fifo":
        ranked = sorted(instances, key=lambda i: i.frozen_since or 0.0)
    elif strategy == "random":
        rng = random.Random(seed)
        ranked = list(instances)
        rng.shuffle(ranked)
    else:  # pragma: no cover
        raise ValueError(strategy)
    released = 0
    cpu = 0.0
    scratch = ProfileStore()  # don't pollute the trained store
    for instance in ranked[:RECLAIM_BUDGET]:
        report = reclaim_instance(instance, scratch)
        released += report.released_bytes
        cpu += report.cpu_seconds
    for instance in instances:
        instance.destroy()
    return {"released": released, "cpu": cpu}


def _collect():
    profiles = _train_profiles()
    results = {
        strategy: _run_strategy(strategy, profiles)
        for strategy in ("throughput", "fifo")
    }
    # Random is noisy: average several draws.
    draws = [_run_strategy("random", profiles, seed=s) for s in range(5)]
    results["random (mean of 5)"] = {
        "released": sum(d["released"] for d in draws) / len(draws),
        "cpu": sum(d["cpu"] for d in draws) / len(draws),
    }
    return results


def test_ablation_selection_policy(benchmark, results_dir):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for strategy, r in results.items():
        rows.append(
            [
                strategy,
                f"{r['released'] / MIB:.1f}",
                f"{r['cpu'] * 1000:.2f}",
                f"{r['released'] / max(r['cpu'], 1e-9) / MIB:.0f}",
            ]
        )
    print(f"\nAblation: selection policy (budget: {RECLAIM_BUDGET} of "
          f"{len(FLEET)} instances):\n")
    print(
        render_table(
            ["strategy", "released MiB", "cpu ms", "MiB per cpu-second"], rows
        )
    )
    write_csv(
        results_dir / "ablation_selection.csv",
        ["strategy", "released_mib", "cpu_ms", "mib_per_cpu_second"],
        rows,
    )

    # §4.5.2 optimizes *reclamation throughput* (bytes per CPU-second):
    # the ranked policy must dominate on that metric, and beat FIFO's
    # oldest-first pick on raw bytes as well.
    def efficiency(r):
        return r["released"] / max(r["cpu"], 1e-9)

    throughput = results["throughput"]
    for other in ("fifo", "random (mean of 5)"):
        assert efficiency(throughput) >= efficiency(results[other]), other
    assert throughput["released"] > results["fifo"]["released"]
    assert throughput["released"] > 20 * MIB
