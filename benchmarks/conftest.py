"""Shared infrastructure for the per-figure benchmarks.

Several figures reuse the same characterization runs (e.g. Figure 1's
vanilla series feed Figure 7's baseline and Figure 12's 256 MiB column), so
runs are memoized by ``(function, policy, budget)`` as compact summaries --
instances are destroyed immediately to keep the session's footprint flat.

Each bench prints the table it regenerates and writes a CSV under
``benchmarks/results/`` (mirroring the artifact's ``parse.sh`` output).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.analysis.characterize import run_single
from repro.mem.layout import MIB

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper's iteration count for single-instance experiments (§3.1).
ITERATIONS = 100

_cache: Dict[Tuple[str, str, int, bool], "CharSummary"] = {}


@dataclass
class CharSummary:
    """Everything the figure benches need from one characterization run."""

    function: str
    language: str
    policy: str
    budget_mib: int
    final_uss: int
    final_ideal: int
    avg_ratio: float
    max_ratio: float
    uss_series: List[int] = field(default_factory=list)
    ideal_series: List[int] = field(default_factory=list)

    @property
    def final_uss_mib(self) -> float:
        return self.final_uss / MIB


def characterize(
    function: str,
    policy: str,
    budget_mib: int = 256,
    shared_libraries: bool = True,
) -> CharSummary:
    """Memoized §3.1/§5.2 run: 100 iterations of one function, one policy."""
    key = (function, policy, budget_mib, shared_libraries)
    if key not in _cache:
        run = run_single(
            function,
            policy=policy,
            iterations=ITERATIONS,
            memory_budget=budget_mib * MIB,
            shared_libraries=shared_libraries,
        )
        _cache[key] = CharSummary(
            function=function,
            language=run.definition.language,
            policy=policy,
            budget_mib=budget_mib,
            final_uss=run.final_uss,
            final_ideal=run.final_ideal,
            avg_ratio=run.avg_ratio,
            max_ratio=run.max_ratio,
            uss_series=list(run.uss_series),
            ideal_series=list(run.ideal_series),
        )
        run.destroy()
    return _cache[key]


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


# ---------------------------------------------------------------- replays

_replay_cache: Dict[Tuple[str, float], object] = {}


def replay_stats(policy: str, scale_factor: float):
    """Memoized §5.3 replay (shared between the Figure 9 and 10 benches)."""
    from repro.core import Desiccant, EagerGcManager, VanillaManager
    from repro.faas.platform import PlatformConfig
    from repro.mem.layout import GIB
    from repro.trace.generator import TraceGenerator
    from repro.trace.replay import ReplayConfig, replay

    key = (policy, scale_factor)
    if key not in _replay_cache:
        factories = {
            "vanilla": VanillaManager,
            "eager": EagerGcManager,
            "desiccant": Desiccant,
        }
        config = ReplayConfig(
            scale_factor=scale_factor,
            warmup_seconds=20.0,
            warmup_scale_factor=15.0,
            duration_seconds=45.0,
            platform=PlatformConfig(capacity_bytes=1 * GIB),
        )
        result = replay(factories[policy], config, TraceGenerator(seed=42))
        _replay_cache[key] = result.stats
        # Free the platform's memory; only the stats are kept.
        for instance in result.platform.all_instances():
            instance.destroy()
    return _replay_cache[key]
