"""Figure 7: single-instance memory after 100 executions, per policy.

For every function: vanilla vs eager vs Desiccant vs ideal.  Paper shape:
Desiccant beats eager on *every* function; average reduction vs vanilla is
~2.8x (Java) / ~1.9x (JavaScript); Desiccant lands close to ideal; and for
mapreduce the eager baseline is *worse* than vanilla because eager GC
cannot collect (and in fact promotes) the mapper->reducer handoff.
"""

from statistics import mean

from conftest import characterize

from repro.analysis.report import render_table, write_csv
from repro.mem.layout import MIB
from repro.workloads import all_definitions

POLICIES = ("vanilla", "eager", "desiccant")


def _collect():
    return {
        (d.name, policy): characterize(d.name, policy)
        for d in all_definitions()
        for policy in POLICIES
    }


def test_fig7_memory_after_100_executions(benchmark, results_dir):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for definition in all_definitions():
        name = definition.name
        vanilla = data[(name, "vanilla")]
        eager = data[(name, "eager")]
        desiccant = data[(name, "desiccant")]
        rows.append(
            [
                name,
                definition.language,
                f"{vanilla.final_uss / MIB:.1f}",
                f"{eager.final_uss / MIB:.1f}",
                f"{desiccant.final_uss / MIB:.1f}",
                f"{vanilla.final_ideal / MIB:.1f}",
                f"{vanilla.final_uss / desiccant.final_uss:.2f}x",
            ]
        )
    print("\nFigure 7. Instance USS (MiB) after 100 executions:\n")
    print(
        render_table(
            ["function", "lang", "vanilla", "eager", "desiccant", "ideal", "gain"],
            rows,
        )
    )
    write_csv(
        results_dir / "fig7.csv",
        ["function", "language", "vanilla_mib", "eager_mib", "desiccant_mib",
         "ideal_mib", "desiccant_vs_vanilla"],
        rows,
    )

    reductions = {"java": [], "javascript": []}
    for definition in all_definitions():
        name = definition.name
        vanilla = data[(name, "vanilla")]
        eager = data[(name, "eager")]
        desiccant = data[(name, "desiccant")]
        # Desiccant beats eager on every function (the paper's key claim).
        assert desiccant.final_uss < eager.final_uss, name
        # Desiccant lands close to the ideal.
        assert desiccant.final_uss <= 1.15 * desiccant.final_ideal, name
        reductions[definition.language].append(
            vanilla.final_uss / desiccant.final_uss
        )

    java_gain = mean(reductions["java"])
    js_gain = mean(reductions["javascript"])
    print(f"\nmean desiccant-vs-vanilla: java={java_gain:.2f}x (paper 2.78), "
          f"javascript={js_gain:.2f}x (paper 1.93)")
    assert 1.8 <= java_gain <= 4.5
    assert 1.4 <= js_gain <= 4.0

    # The mapreduce regression: eager >= vanilla (chain-handoff blindness).
    mr_vanilla = data[("mapreduce", "vanilla")]
    mr_eager = data[("mapreduce", "eager")]
    assert mr_eager.final_uss >= 0.97 * mr_vanilla.final_uss
