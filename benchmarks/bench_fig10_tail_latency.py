"""Figure 10: tail latency at two scale factors.

p50/p90/p95/p99 for vanilla, eager, and Desiccant at a medium (15) and a
high (25) scale factor.  Paper shape: Desiccant's lower cold-boot rate cuts
tail latency across the board at the medium factor (p99 -37.5% vs
vanilla); at the high factor the p90/p95 gaps persist.
"""

from conftest import replay_stats

from repro.analysis.report import render_table, write_csv

SCALE_FACTORS = (15, 25)
POLICIES = ("vanilla", "eager", "desiccant")


def _collect():
    return {
        (sf, policy): replay_stats(policy, sf)
        for sf in SCALE_FACTORS
        for policy in POLICIES
    }


def test_fig10_tail_latency(benchmark, results_dir):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for sf in SCALE_FACTORS:
        for policy in POLICIES:
            s = data[(sf, policy)]
            rows.append(
                [
                    sf,
                    policy,
                    f"{s.p50_latency:.3f}",
                    f"{s.p90_latency:.3f}",
                    f"{s.p95_latency:.3f}",
                    f"{s.p99_latency:.3f}",
                ]
            )
    print("\nFigure 10. Latency percentiles (seconds):\n")
    print(render_table(["sf", "policy", "p50", "p90", "p95", "p99"], rows))
    write_csv(
        results_dir / "fig10.csv",
        ["scale_factor", "policy", "p50_s", "p90_s", "p95_s", "p99_s"],
        rows,
    )

    for sf in SCALE_FACTORS:
        vanilla = data[(sf, "vanilla")]
        eager = data[(sf, "eager")]
        desiccant = data[(sf, "desiccant")]
        # Desiccant improves every reported percentile vs vanilla.
        assert desiccant.p90_latency < vanilla.p90_latency
        assert desiccant.p95_latency < vanilla.p95_latency
        assert desiccant.p99_latency <= vanilla.p99_latency
        # ... and does not lose to eager at the tail.
        assert desiccant.p99_latency <= eager.p99_latency * 1.02

    # The medium scale factor shows a substantial p99 win (paper: -37.5%).
    sf15_vanilla = data[(15, "vanilla")]
    sf15_desiccant = data[(15, "desiccant")]
    improvement = 1 - sf15_desiccant.p99_latency / sf15_vanilla.p99_latency
    print(f"\np99 improvement vs vanilla at SF15: {improvement:.1%} "
          f"(paper: 37.5%)")
    assert improvement > 0.2
