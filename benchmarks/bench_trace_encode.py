"""Trace-line encoding microbenchmark: compiled encoders vs the generic.

Drives the two line encoders from :mod:`repro.trace.encode` -- the
compiled per-``(kind, key-set)`` fast path (kind-keyed dispatch, exactly
as :class:`~repro.sim.trace.EventTraceSink` probes it) and the original
generic ``json.dumps`` reference (docs/EVENT_TRACE.md) -- over the same
synthesized event corpus.  Both legs pay identical harness costs (the
event loop, the ``t`` rounding, a list append per line); the measured
delta is the encoder machinery itself.  After timing, both legs' lines
are hashed with the repo's stream convention and the digests must match
exactly: the microbenchmark is also a differential gate.

(Sink-level emission -- batched file/archive/digest hand-off on top of
the encoders -- is covered by the ``:enc`` replay twins in
``BENCH_replay.json``, which carry their own end-to-end speedup bar.)

Pytest mode (collected with the other benches) asserts the compiled path
beats the generic encoder by at least 3x -- the PR's acceptance bar --
and that the digests agree.  Script mode drives CI's perf-smoke job::

    python benchmarks/bench_trace_encode.py --json out.json
    python benchmarks/bench_trace_encode.py --min-speedup 3.0

``--min-speedup`` exits 1 when the compiled path falls below the bar (or
the digests ever disagree, which always fails).
"""

from __future__ import annotations

import argparse
import gc
import hashlib
import json
import random
import sys
import time
from pathlib import Path
from typing import List

from repro.sim.events import Event
from repro.trace.encode import ID_KEYS, EncoderTable, encode_line_generic

#: Acceptance bar: compiled encoding beats the generic encoder by this.
MIN_SPEEDUP = 3.0

#: Function names cycled through payloads (same flavor the platform's
#: workload definitions use).
_FUNCTIONS = ("fft", "sort", "mapreduce", "pagerank", "kmeans", "video")


def build_corpus(events: int = 50_000, seed: int = 7) -> List[Event]:
    """A deterministic event stream shaped like a real replay's.

    Kind mix, payload key-sets, and value types mirror what
    ``faas/platform.py`` actually publishes (measured from a traced
    vanilla replay): ``freeze`` / ``thaw`` / ``invocation-end`` carry
    ~22% each, ``request-arrival`` / ``request-done`` ~17% each, cold
    boots and evictions are rare; ids are ints, ``function`` a string,
    timings floats.
    """
    rng = random.Random(seed)
    corpus: List[Event] = []
    t = 0.0
    for i in range(events):
        t += rng.random() * 0.01
        function = _FUNCTIONS[i % len(_FUNCTIONS)]
        instance = 7000 + i % 977
        shape = i % 9
        if shape < 2:
            event = Event(
                "freeze",
                t,
                i % 8,
                {"instance_id": instance, "function": function},
            )
        elif shape < 4:
            event = Event(
                "thaw",
                t,
                i % 8,
                {
                    "instance_id": instance,
                    "function": function,
                    "thaw_seconds": rng.random() * 0.05,
                },
            )
        elif shape < 6:
            event = Event(
                "invocation-end",
                t,
                i % 8,
                {
                    "request_id": 100_000 + i,
                    "instance_id": instance,
                    "function": function,
                    "cpu_seconds": rng.random(),
                },
            )
        elif shape == 6:
            event = Event(
                "request-arrival",
                t,
                i % 8,
                {"request_id": 100_000 + i, "function": function},
            )
        elif shape == 7:
            event = Event(
                "request-done",
                t,
                i % 8,
                {
                    "request_id": 100_000 + i,
                    "function": function,
                    "latency": rng.random(),
                    "cold_boots": i % 3,
                },
            )
        else:
            event = Event(
                "cold-boot",
                t,
                i % 8,
                {
                    "instance_id": instance,
                    "function": function,
                    "boot_cpu_seconds": rng.random() * 2.0,
                },
            )
        event.seq = i
        corpus.append(event)
    return corpus


def _work_items(corpus: List[Event]) -> List[tuple]:
    """Pre-resolved ``(seq, t, node, kind, data)`` encoder inputs.

    Both encoder APIs take an already-rounded ``t`` (rounding is the
    sink's job, done once per event before either encoder runs), so the
    rounding -- and the ``Event`` attribute walk -- happen here, outside
    the timed region, identically for both legs.
    """
    return [
        (event.seq, round(event.time, 9), event.node, event.kind, event.data)
        for event in corpus
    ]


def _time_leg(work: List[tuple], encoder: str) -> dict:
    """One encoding pass over the work items; wall seconds + digest.

    Each pass starts from fresh id maps (and, on the fast leg, a fresh
    :class:`EncoderTable`), so the two legs normalize identically and
    their digests must agree.  The digest -- SHA-256 over every line
    newline-terminated, same convention as
    :func:`repro.sim.shard.sha256_lines` -- is computed outside the
    timed region: both legs are timed on line production alone.
    """
    id_maps = {key: {} for key in ID_KEYS}
    lines: List[str] = []
    append = lines.append
    if encoder == "generic":

        def normalize(key, value, _maps=id_maps):
            mapping = _maps.get(key)
            if mapping is None:
                return value
            return mapping.setdefault(value, len(mapping) + 1)

        t0 = time.perf_counter()
        for seq, t, node, kind, data in work:
            append(encode_line_generic(seq, t, node, kind, data, normalize))
        elapsed = time.perf_counter() - t0
    else:
        # Compile every kind's encoder up front (a handful of one-time
        # exec calls); the timed region is the steady-state encode rate.
        table = EncoderTable()
        by_kind = table.by_kind
        for _, _, _, kind, data in work:
            if kind not in by_kind:
                table.kind_encoder(kind, data)
        t0 = time.perf_counter()
        for seq, t, node, kind, data in work:
            append(by_kind[kind](seq, t, node, data, id_maps))
        elapsed = time.perf_counter() - t0
    payload = ("\n".join(lines) + "\n").encode("utf-8") if lines else b""
    return {"seconds": elapsed, "sha256": hashlib.sha256(payload).hexdigest()}


def run_trace_encode_microbench(
    events: int = 50_000, repeats: int = 3, seed: int = 7
) -> dict:
    """Best-of-``repeats`` emission timings for both encoder legs.

    Every pass re-creates its sink (fresh id maps, fresh digest), so the
    two legs normalize identically and their stream digests must agree.
    """
    work = _work_items(build_corpus(events, seed=seed))
    best = {"fast": float("inf"), "generic": float("inf")}
    digests = {}
    was_enabled = gc.isenabled()
    gc.disable()  # collector pauses are noise, not encoder cost
    try:
        for encoder in ("fast", "generic"):  # untimed warmup pass each
            _time_leg(work, encoder)
        for _ in range(repeats):
            for encoder in ("fast", "generic"):
                leg = _time_leg(work, encoder)
                best[encoder] = min(best[encoder], leg["seconds"])
                digests.setdefault(encoder, leg["sha256"])
                if digests[encoder] != leg["sha256"]:
                    raise AssertionError(
                        f"{encoder} leg's digest changed between repeats"
                    )
    finally:
        if was_enabled:
            gc.enable()
    return {
        "events": events,
        "repeats": repeats,
        "fast_ms": round(best["fast"] * 1e3, 4),
        "generic_ms": round(best["generic"] * 1e3, 4),
        "fast_lines_per_sec": round(events / best["fast"]),
        "generic_lines_per_sec": round(events / best["generic"]),
        "speedup": round(best["generic"] / best["fast"], 2),
        "fast_sha256": digests["fast"],
        "generic_sha256": digests["generic"],
        "digests_equal": digests["fast"] == digests["generic"],
    }


def test_trace_encode_speedup_and_digest():
    """Compiled emission beats the generic encoder >= 3x, byte-identically."""
    metrics = run_trace_encode_microbench(events=30_000, repeats=3)
    print(
        f"\nfast    {metrics['fast_ms']:.2f} ms "
        f"({metrics['fast_lines_per_sec']} lines/s)\n"
        f"generic {metrics['generic_ms']:.2f} ms "
        f"({metrics['generic_lines_per_sec']} lines/s)\n"
        f"speedup {metrics['speedup']:.2f}x, digests equal: "
        f"{metrics['digests_equal']}"
    )
    assert metrics["digests_equal"], "encoder legs diverged"
    assert metrics["speedup"] >= MIN_SPEEDUP


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=50_000)
    parser.add_argument("--repeats", type=int, default=3, help="best-of repeats")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", metavar="PATH", help="write metrics JSON here")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit 1 unless the compiled path beats the generic encoder "
        "by at least this factor",
    )
    args = parser.parse_args(argv)

    metrics = run_trace_encode_microbench(
        events=args.events, repeats=args.repeats, seed=args.seed
    )
    print(json.dumps(metrics, indent=2))
    if args.json:
        Path(args.json).write_text(json.dumps(metrics, indent=2) + "\n")
    if not metrics["digests_equal"]:
        print("DIVERGENCE encoder legs produced different digests", file=sys.stderr)
        return 1
    if args.min_speedup is not None and metrics["speedup"] < args.min_speedup:
        print(
            f"REGRESSION speedup {metrics['speedup']:.2f}x is below the "
            f"{args.min_speedup:g}x bar",
            file=sys.stderr,
        )
        return 1
    if args.min_speedup is not None:
        print("within bar", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
